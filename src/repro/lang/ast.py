"""Abstract syntax for the JMatch 2.0 subset.

JMatch deliberately blurs the line between *formulas*, *patterns*, and
*expressions*: the same syntax tree node can be evaluated forward,
matched against a value, or solved for its unknowns depending on mode
(Section 2 of the paper).  We therefore use a single ``Expr`` hierarchy
for all three roles and let the mode analysis decide how each node is
used.

Every node carries a :class:`~repro.errors.Span` for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import NO_SPAN, Span

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """A source-level type: ``int``, ``boolean``, a class name, or a tuple."""

    name: str
    elements: tuple["Type", ...] = ()

    def __str__(self) -> str:
        if self.name == "tuple":
            return "(" + ", ".join(str(e) for e in self.elements) + ")"
        return self.name

    @property
    def is_primitive(self) -> bool:
        return self.name in ("int", "boolean")

    @property
    def is_tuple(self) -> bool:
        return self.name == "tuple"


INT_TYPE = Type("int")
BOOLEAN_TYPE = Type("boolean")
OBJECT_TYPE = Type("Object")
NULL_TYPE = Type("null")
STRING_TYPE = Type("String")
VOID_TYPE = Type("void")


def tuple_type(elements: list[Type]) -> Type:
    return Type("tuple", tuple(elements))


# ---------------------------------------------------------------------------
# Expressions / formulas / patterns
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for formula/pattern/expression nodes."""

    span: Span = field(default=NO_SPAN, kw_only=True)


@dataclass
class Lit(Expr):
    """Integer, boolean, string, or null literal."""

    value: Union[int, bool, str, None]

    def __str__(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


@dataclass
class Var(Expr):
    """A variable reference (or binding occurrence, resolved in context).

    ``this`` and ``result`` are ordinary :class:`Var` nodes with those
    reserved names.
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class VarDecl(Expr):
    """A declaration pattern ``T x`` (``name`` is None for ``T _``)."""

    type: Type
    name: Optional[str]

    def __str__(self) -> str:
        return f"{self.type} {self.name or '_'}"


@dataclass
class Wildcard(Expr):
    """The ``_`` pattern: matches anything, binds nothing."""

    def __str__(self) -> str:
        return "_"


@dataclass
class Binary(Expr):
    """Arithmetic (`+ - * / %`), comparison (`= != < <= > >=`),
    or logical (`&& ||`) binary operation."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


ARITH_OPS = frozenset({"+", "-", "*", "/", "%"})
COMPARE_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})
LOGIC_OPS = frozenset({"&&", "||"})


@dataclass
class Not(Expr):
    """Logical negation ``!f``."""

    operand: Expr

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass
class PatOr(Expr):
    """Pattern/formula disjunction: ``#`` (overlapping) or ``|`` (disjoint).

    Section 3.3: ``#`` matches against all alternatives; ``|`` requires
    the alternatives to be provably disjoint, so at most one solution
    is produced.
    """

    left: Expr
    right: Expr
    disjoint: bool

    @property
    def op(self) -> str:
        return "|" if self.disjoint else "#"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class PatAnd(Expr):
    """The ``as`` pattern conjunction: both patterns match one value."""

    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} as {self.right})"


@dataclass
class Where(Expr):
    """``p where (f)``: pattern ``p`` refined by formula ``f``."""

    pattern: Expr
    condition: Expr

    def __str__(self) -> str:
        return f"({self.pattern} where {self.condition})"


@dataclass
class TupleExpr(Expr):
    """Tuple pattern ``(p1, ..., pn)``; not a first-class value."""

    items: list[Expr]

    def __str__(self) -> str:
        return "(" + ", ".join(str(i) for i in self.items) + ")"


@dataclass
class Call(Expr):
    """Any invocation: method, named constructor, or class constructor.

    Shapes (Section 3.1):

    * ``succ(n)``            -- unqualified; receiver is ``this`` or the
      matched value, resolved by context,
    * ``n.succ(y)``          -- explicit receiver,
    * ``ZNat.succ(n)``       -- class-qualified creation,
    * ``Nat(0)``             -- class constructor (name is a class).
    """

    receiver: Optional[Expr]
    qualifier: Optional[str]  # a class name, for static-qualified calls
    name: str
    args: list[Expr]

    def __str__(self) -> str:
        prefix = ""
        if self.receiver is not None:
            prefix = f"{self.receiver}."
        elif self.qualifier is not None:
            prefix = f"{self.qualifier}."
        return f"{prefix}{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass
class FieldAccess(Expr):
    """``e.f`` -- reading a field of an object."""

    receiver: Expr
    name: str

    def __str__(self) -> str:
        return f"{self.receiver}.{self.name}"


@dataclass
class NotAll(Expr):
    """The opaque refinement predicate ``notall(x1, ..., xn)`` (Sec. 4.4)."""

    names: list[str]

    def __str__(self) -> str:
        return f"notall({', '.join(self.names)})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    span: Span = field(default=NO_SPAN, kw_only=True)


@dataclass
class Block(Stmt):
    statements: list[Stmt]


@dataclass
class LetStmt(Stmt):
    """``let f;`` -- solve ``f``; its bindings scope over the rest of the
    block.  ``T x = e;`` is sugar for ``let T x = e;`` (Section 4)."""

    formula: Expr


@dataclass
class LocalDecl(Stmt):
    """``T x;`` -- declare a local with no immediate binding."""

    type: Type
    name: str


@dataclass
class SwitchCase:
    patterns: list[Expr]  # several `case p:` labels may share a body
    body: list[Stmt]
    span: Span = NO_SPAN


@dataclass
class SwitchStmt(Stmt):
    subject: Expr
    cases: list[SwitchCase]
    default: Optional[list[Stmt]] = None


@dataclass
class CondArm:
    formula: Expr
    body: list[Stmt]
    span: Span = NO_SPAN


@dataclass
class CondStmt(Stmt):
    """``cond { (f1) {s1} ... else s }`` -- first true formula wins."""

    arms: list[CondArm]
    else_body: Optional[list[Stmt]] = None


@dataclass
class IfStmt(Stmt):
    condition: Expr
    then_body: list[Stmt]
    else_body: Optional[list[Stmt]] = None


@dataclass
class ForeachStmt(Stmt):
    """``foreach (f) { s }`` -- execute ``s`` for every solution of ``f``."""

    formula: Expr
    body: list[Stmt]


@dataclass
class WhileStmt(Stmt):
    condition: Expr
    body: list[Stmt]


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class AssignStmt(Stmt):
    """``x = e;`` re-binding an existing local (imperative assignment)."""

    target: Expr  # Var or FieldAccess
    value: Expr


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    type: Type
    name: str
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return f"{self.type} {self.name}"


@dataclass
class ModeDecl:
    """``returns(x, y)`` or ``iterates(x, y)``.

    ``names`` lists the *unknowns* of the mode among the parameters.
    The forward mode (all parameters known, ``result`` unknown) is
    implicit for non-predicate methods; ``returns()`` on a
    boolean-returning method or constructor is the predicate/pattern
    mode in which everything is known.
    """

    iterative: bool
    names: list[str]
    span: Span = NO_SPAN

    def __str__(self) -> str:
        keyword = "iterates" if self.iterative else "returns"
        return f"{keyword}({', '.join(self.names)})"


@dataclass
class InvariantDecl:
    visibility: str  # public / protected / private
    formula: Expr
    span: Span = NO_SPAN


@dataclass
class MethodDecl:
    """A method, named constructor, or class constructor.

    ``kind`` is one of:

    * ``"method"`` -- ordinary (possibly static, possibly multimodal),
    * ``"constructor"`` -- a *named constructor* (Section 3.1); the name
      differs from the class and it may appear in interfaces,
    * ``"class-constructor"`` -- a JMatch class constructor whose name
      equals the class name,
    * ``"equality"`` -- the special ``equals`` equality constructor
      (Section 3.2).
    """

    kind: str
    visibility: str
    static: bool
    return_type: Optional[Type]  # None for constructors (implicitly the class)
    name: str
    params: list[Param]
    modes: list[ModeDecl]
    matches: Optional[Expr] = None
    ensures: Optional[Expr] = None
    body: Optional[Union[Expr, Block]] = None  # Expr = declarative formula body
    abstract: bool = False
    span: Span = NO_SPAN

    @property
    def is_constructor(self) -> bool:
        return self.kind in ("constructor", "class-constructor", "equality")

    @property
    def declarative(self) -> bool:
        return isinstance(self.body, Expr)


@dataclass
class FieldDecl:
    visibility: str
    type: Type
    name: str
    span: Span = NO_SPAN


@dataclass
class ClassDecl:
    name: str
    interfaces: list[str]
    superclass: Optional[str]
    fields: list[FieldDecl]
    invariants: list[InvariantDecl]
    methods: list[MethodDecl]
    abstract: bool = False
    span: Span = NO_SPAN

    @property
    def is_interface(self) -> bool:
        return False


@dataclass
class InterfaceDecl:
    name: str
    extends: list[str]
    invariants: list[InvariantDecl]
    methods: list[MethodDecl]  # all implicitly abstract
    span: Span = NO_SPAN

    @property
    def is_interface(self) -> bool:
        return True


@dataclass
class FunctionDecl:
    """A top-level static function (for example programs and tests)."""

    return_type: Type
    name: str
    params: list[Param]
    modes: list[ModeDecl]
    matches: Optional[Expr] = None
    ensures: Optional[Expr] = None
    body: Optional[Union[Expr, Block]] = None
    span: Span = NO_SPAN

    # Adapter properties so functions share MethodInfo-based machinery.
    kind = "function"
    visibility = "public"
    static = True
    abstract = False

    @property
    def is_constructor(self) -> bool:
        return False

    @property
    def declarative(self) -> bool:
        return isinstance(self.body, Expr)


@dataclass
class Program:
    declarations: list[Union[ClassDecl, InterfaceDecl, FunctionDecl]]

    def classes(self) -> list[ClassDecl]:
        return [d for d in self.declarations if isinstance(d, ClassDecl)]

    def interfaces(self) -> list[InterfaceDecl]:
        return [d for d in self.declarations if isinstance(d, InterfaceDecl)]

    def functions(self) -> list[FunctionDecl]:
        return [d for d in self.declarations if isinstance(d, FunctionDecl)]
