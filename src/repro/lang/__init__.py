"""Front end for the JMatch 2.0 language subset."""

from .check import analyze
from .parser import parse_formula, parse_program

__all__ = ["analyze", "parse_formula", "parse_program"]
