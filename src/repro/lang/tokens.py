"""Token definitions for the JMatch 2.0 subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import Span


class TokenKind(enum.Enum):
    IDENT = "identifier"
    INT_LIT = "int literal"
    STRING_LIT = "string literal"
    KEYWORD = "keyword"
    OPERATOR = "operator"
    EOF = "end of input"


KEYWORDS = frozenset(
    {
        "abstract",
        "as",
        "boolean",
        "case",
        "class",
        "cond",
        "constructor",
        "default",
        "else",
        "ensures",
        "extends",
        "false",
        "foreach",
        "if",
        "implements",
        "int",
        "interface",
        "invariant",
        "iterates",
        "let",
        "matches",
        "new",
        "notall",
        "null",
        "private",
        "protected",
        "public",
        "return",
        "returns",
        "static",
        "switch",
        "this",
        "true",
        "where",
        "while",
    }
)

# Multi-character operators first so the lexer applies maximal munch.
OPERATORS = (
    "&&",
    "||",
    "!=",
    "<=",
    ">=",
    "==",
    "=",
    "<",
    ">",
    "!",
    "+",
    "-",
    "*",
    "/",
    "%",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    ".",
    "#",
    "|",
    "_",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: Span

    @property
    def is_eof(self) -> bool:
        return self.kind == TokenKind.EOF

    def matches(self, kind: TokenKind, text: str | None = None) -> bool:
        return self.kind == kind and (text is None or self.text == text)

    def __str__(self) -> str:
        if self.kind == TokenKind.EOF:
            return "<eof>"
        return self.text
