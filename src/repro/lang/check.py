"""Semantic analysis: disjunction normalisation and light type inference.

Two jobs live here:

1. **Disjunction normalisation.**  The parser binds ``|``/``#`` between
   ``||`` and ``&&``, which is right for formula-level disjunctions
   (Figure 4) but wrong for value-level ones like ``x = 1 | 2``
   (Section 3.3).  Because pattern disjunction distributes over
   comparison -- ``x = (p # q)`` and ``(x = p) # (x = q)`` have the
   same solutions -- we repair the tree semantically: when an operand
   of a formula-position ``|``/``#`` is a *value* pattern, the nearest
   comparison on the left is distributed onto it.

2. **Light type inference**, enough to drive (1) and later phases:
   expression types from literals, declared locals/params, fields, and
   method signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TypeCheckError
from . import ast
from .symbols import ProgramTable


@dataclass
class TypeEnv:
    """Variable -> type, with lexical nesting."""

    table: ProgramTable
    owner: str | None = None  # enclosing class/interface name
    vars: dict[str, ast.Type] = field(default_factory=dict)

    def child(self) -> "TypeEnv":
        return TypeEnv(self.table, self.owner, dict(self.vars))

    def bind(self, name: str, type_: ast.Type) -> None:
        self.vars[name] = type_

    def lookup(self, name: str) -> ast.Type | None:
        if name in self.vars:
            return self.vars[name]
        if name == "this" and self.owner is not None:
            return ast.Type(self.owner)
        if self.owner is not None:
            # Unqualified field reference inside a class.
            f = self.table.lookup_field(self.owner, name)
            if f is not None:
                return f.type
        return None


def infer_type(expr: ast.Expr, env: TypeEnv) -> ast.Type | None:
    """Best-effort static type of an expression; None when unknown."""
    table = env.table
    if isinstance(expr, ast.Lit):
        if isinstance(expr.value, bool):
            return ast.BOOLEAN_TYPE
        if isinstance(expr.value, int):
            return ast.INT_TYPE
        if isinstance(expr.value, str):
            return ast.STRING_TYPE
        return ast.NULL_TYPE
    if isinstance(expr, ast.Var):
        return env.lookup(expr.name)
    if isinstance(expr, ast.VarDecl):
        return expr.type
    if isinstance(expr, ast.Wildcard):
        return None
    if isinstance(expr, ast.Binary):
        if expr.op in ast.ARITH_OPS:
            return ast.INT_TYPE
        return ast.BOOLEAN_TYPE
    if isinstance(expr, (ast.Not, ast.NotAll)):
        return ast.BOOLEAN_TYPE
    if isinstance(expr, (ast.PatOr, ast.PatAnd)):
        left = infer_type(expr.left, env)
        return left if left is not None else infer_type(expr.right, env)
    if isinstance(expr, ast.Where):
        return infer_type(expr.pattern, env)
    if isinstance(expr, ast.TupleExpr):
        items = [infer_type(i, env) or ast.OBJECT_TYPE for i in expr.items]
        return ast.tuple_type(items)
    if isinstance(expr, ast.FieldAccess):
        recv = infer_type(expr.receiver, env)
        if recv is None or recv.is_primitive:
            return None
        f = table.lookup_field(recv.name, expr.name)
        return f.type if f is not None else None
    if isinstance(expr, ast.Call):
        return _infer_call_type(expr, env)
    return None


def _infer_call_type(expr: ast.Call, env: TypeEnv) -> ast.Type | None:
    table = env.table
    # Class constructor call: `Nat(0)`, `ZNat(val - 1)`.
    if expr.qualifier is None and expr.receiver is None:
        if expr.name in table.types:
            return ast.Type(expr.name)
        if expr.name in table.functions:
            return table.functions[expr.name].return_type
        # Unqualified method/constructor in a class body.
        if env.owner is not None:
            method = table.lookup_method(env.owner, expr.name)
            if method is not None:
                if method.is_constructor:
                    # Receiver-less constructor invocation acts as a
                    # predicate on `this`/the matched value (Section 3.1).
                    return ast.BOOLEAN_TYPE
                return method.result_type()
        return None
    if expr.qualifier is not None:
        # `ZNat.succ(n)` -- creation through a specific implementation.
        method = table.lookup_method(expr.qualifier, expr.name)
        if method is None:
            return None
        if method.is_constructor:
            return ast.Type(expr.qualifier)
        return method.result_type()
    recv = infer_type(expr.receiver, env)
    if recv is None or recv.is_primitive:
        return None
    method = table.lookup_method(recv.name, expr.name)
    if method is None:
        return None
    if method.is_constructor:
        # `n.succ(y)` tests/matches n against the pattern: boolean.
        return ast.BOOLEAN_TYPE
    return method.result_type()


# ---------------------------------------------------------------------------
# Disjunction normalisation
# ---------------------------------------------------------------------------

FORMULA = "formula"
VALUE = "value"


def _is_value_operand(expr: ast.Expr, env: TypeEnv) -> bool:
    """Should this ``|``/``#`` operand be folded into a comparison?"""
    type_ = infer_type(expr, env)
    if type_ is not None:
        return type_ != ast.BOOLEAN_TYPE
    # Unknown type: patterns that cannot possibly be formulas.
    return isinstance(
        expr, (ast.TupleExpr, ast.VarDecl, ast.Wildcard, ast.Lit, ast.Var)
    )


def _distribute_value(
    left: ast.Expr, right: ast.Expr, disjoint: bool, span
) -> ast.Expr | None:
    """Rewrite ``left | right`` where ``right`` is a value pattern.

    Finds the rightmost comparison within ``left`` (descending through
    ``&&`` chains and already-normalised disjunction chains) and turns
    it into a pattern disjunction with ``right``::

        A && (x = p)  |  q     ==>   A && ((x = p) | (x = q))

    which is the reading JMatch gives value-level ``|``/``#`` operands
    (they could only have parsed as part of that comparison's
    right-hand side).  Returns None when no comparison exists.
    """
    if isinstance(left, ast.Binary) and left.op in ast.COMPARE_OPS:
        folded = ast.Binary(left.op, left.left, right, span=span)
        return ast.PatOr(left, folded, disjoint=disjoint, span=span)
    if isinstance(left, ast.Binary) and left.op == "&&":
        new_right = _distribute_value(left.right, right, disjoint, span)
        if new_right is not None:
            left.right = new_right
            return left
        return None
    if isinstance(left, ast.PatOr):
        new_right = _distribute_value(left.right, right, disjoint, span)
        if new_right is not None:
            left.right = new_right
            return left
        new_left = _distribute_value(left.left, right, disjoint, span)
        if new_left is not None:
            left.left = new_left
            return left
        return None
    return None


class Normalizer:
    """Rewrites every formula of a program in place."""

    def __init__(self, table: ProgramTable):
        self.table = table

    def run(self) -> None:
        for decl in self.table.program.declarations:
            if isinstance(decl, ast.FunctionDecl):
                self._do_callable(decl, owner=None)
            else:
                self._do_type(decl)

    def _do_type(self, decl: ast.ClassDecl | ast.InterfaceDecl) -> None:
        env = TypeEnv(self.table, decl.name)
        for inv in decl.invariants:
            inv.formula = self.rewrite(inv.formula, FORMULA, env)
        for method in decl.methods:
            self._do_callable(method, owner=decl.name)

    def _do_callable(
        self, decl: ast.MethodDecl | ast.FunctionDecl, owner: str | None
    ) -> None:
        env = TypeEnv(self.table, owner)
        for param in decl.params:
            env.bind(param.name, param.type)
        if isinstance(decl, ast.MethodDecl) and decl.is_constructor:
            env.bind("result", ast.Type(owner))
        elif decl.return_type is not None:
            env.bind("result", decl.return_type)
        if decl.matches is not None:
            decl.matches = self.rewrite(decl.matches, FORMULA, env.child())
        if decl.ensures is not None:
            decl.ensures = self.rewrite(decl.ensures, FORMULA, env.child())
        if isinstance(decl.body, ast.Expr):
            decl.body = self.rewrite(decl.body, FORMULA, env.child())
        elif isinstance(decl.body, ast.Block):
            self._do_stmts(decl.body.statements, env.child())

    def _do_stmts(self, stmts: list[ast.Stmt], env: TypeEnv) -> None:
        for stmt in stmts:
            self._do_stmt(stmt, env)

    def _do_stmt(self, stmt: ast.Stmt, env: TypeEnv) -> None:
        if isinstance(stmt, ast.Block):
            self._do_stmts(stmt.statements, env.child())
        elif isinstance(stmt, (ast.LetStmt,)):
            stmt.formula = self.rewrite(stmt.formula, FORMULA, env)
            _bind_declared(stmt.formula, env)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self.rewrite(stmt.expr, FORMULA, env)
            _bind_declared(stmt.expr, env)
        elif isinstance(stmt, ast.LocalDecl):
            env.bind(stmt.name, stmt.type)
        elif isinstance(stmt, ast.SwitchStmt):
            stmt.subject = self.rewrite(stmt.subject, VALUE, env)
            for case in stmt.cases:
                case_env = env.child()
                case.patterns = [
                    self.rewrite(p, VALUE, case_env) for p in case.patterns
                ]
                for p in case.patterns:
                    _bind_declared(p, case_env)
                self._do_stmts(case.body, case_env)
            if stmt.default is not None:
                self._do_stmts(stmt.default, env.child())
        elif isinstance(stmt, ast.CondStmt):
            for arm in stmt.arms:
                arm_env = env.child()
                arm.formula = self.rewrite(arm.formula, FORMULA, arm_env)
                _bind_declared(arm.formula, arm_env)
                self._do_stmts(arm.body, arm_env)
            if stmt.else_body is not None:
                self._do_stmts(stmt.else_body, env.child())
        elif isinstance(stmt, ast.IfStmt):
            branch_env = env.child()
            stmt.condition = self.rewrite(stmt.condition, FORMULA, branch_env)
            _bind_declared(stmt.condition, branch_env)
            self._do_stmts(stmt.then_body, branch_env)
            if stmt.else_body is not None:
                self._do_stmts(stmt.else_body, env.child())
        elif isinstance(stmt, (ast.ForeachStmt, ast.WhileStmt)):
            body_env = env.child()
            formula = stmt.formula if isinstance(stmt, ast.ForeachStmt) else stmt.condition
            formula = self.rewrite(formula, FORMULA, body_env)
            if isinstance(stmt, ast.ForeachStmt):
                stmt.formula = formula
            else:
                stmt.condition = formula
            _bind_declared(formula, body_env)
            self._do_stmts(stmt.body, body_env)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                stmt.value = self.rewrite(stmt.value, VALUE, env)
        elif isinstance(stmt, ast.AssignStmt):
            stmt.value = self.rewrite(stmt.value, VALUE, env)

    # -- expression rewriting ------------------------------------------------

    def rewrite(self, expr: ast.Expr, position: str, env: TypeEnv) -> ast.Expr:
        if isinstance(expr, ast.Binary):
            if expr.op in ast.LOGIC_OPS:
                expr.left = self.rewrite(expr.left, FORMULA, env)
                expr.right = self.rewrite(expr.right, FORMULA, env)
            elif expr.op in ast.COMPARE_OPS:
                expr.left = self.rewrite(expr.left, VALUE, env)
                expr.right = self.rewrite(expr.right, VALUE, env)
            else:
                expr.left = self.rewrite(expr.left, VALUE, env)
                expr.right = self.rewrite(expr.right, VALUE, env)
            return expr
        if isinstance(expr, ast.Not):
            expr.operand = self.rewrite(expr.operand, FORMULA, env)
            return expr
        if isinstance(expr, ast.PatOr):
            expr.left = self.rewrite(expr.left, position, env)
            if position == FORMULA and _is_value_operand(expr.right, env):
                right = self.rewrite(expr.right, VALUE, env)
                rewritten = _distribute_value(
                    expr.left, right, expr.disjoint, expr.span
                )
                if rewritten is None:
                    raise TypeCheckError(
                        f"cannot interpret pattern operand {right} of "
                        f"'{expr.op}': no comparison to distribute over",
                        expr.span,
                    )
                return rewritten
            expr.right = self.rewrite(expr.right, position, env)
            return expr
        if isinstance(expr, ast.PatAnd):
            expr.left = self.rewrite(expr.left, position, env)
            expr.right = self.rewrite(expr.right, position, env)
            return expr
        if isinstance(expr, ast.Where):
            expr.pattern = self.rewrite(expr.pattern, position, env)
            expr.condition = self.rewrite(expr.condition, FORMULA, env)
            return expr
        if isinstance(expr, ast.TupleExpr):
            expr.items = [self.rewrite(i, VALUE, env) for i in expr.items]
            return expr
        if isinstance(expr, ast.Call):
            if expr.receiver is not None:
                expr.receiver = self.rewrite(expr.receiver, VALUE, env)
            expr.args = [self.rewrite(a, VALUE, env) for a in expr.args]
            return expr
        if isinstance(expr, ast.FieldAccess):
            expr.receiver = self.rewrite(expr.receiver, VALUE, env)
            return expr
        if isinstance(expr, ast.VarDecl):
            if expr.name is not None:
                env.bind(expr.name, expr.type)
            return expr
        return expr


def _bind_declared(expr: ast.Expr, env: TypeEnv) -> None:
    """Record declaration-pattern bindings so later statements see them."""
    if isinstance(expr, ast.VarDecl) and expr.name is not None:
        env.bind(expr.name, expr.type)
    for child in _children(expr):
        _bind_declared(child, env)


def _children(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, ast.Not):
        return [expr.operand]
    if isinstance(expr, (ast.PatOr, ast.PatAnd)):
        return [expr.left, expr.right]
    if isinstance(expr, ast.Where):
        return [expr.pattern, expr.condition]
    if isinstance(expr, ast.TupleExpr):
        return list(expr.items)
    if isinstance(expr, ast.Call):
        out = list(expr.args)
        if expr.receiver is not None:
            out.append(expr.receiver)
        return out
    if isinstance(expr, ast.FieldAccess):
        return [expr.receiver]
    return []


def normalize_formula(
    expr: ast.Expr, table: ProgramTable, owner: str | None = None
) -> ast.Expr:
    """Normalise a standalone formula (as `analyze` does for programs)."""
    return Normalizer(table).rewrite(expr, FORMULA, TypeEnv(table, owner))


def analyze(program: ast.Program) -> ProgramTable:
    """Build the symbol table and normalise the program's formulas."""
    table = ProgramTable(program)
    Normalizer(table).run()
    return table
