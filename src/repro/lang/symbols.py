"""Program symbol tables: classes, interfaces, methods, invariants.

Builds the environment every later stage queries: subtype tests,
method lookup through superclasses and interfaces, invariant
collection (with visibility filtering, Section 4.1), and the set of
known implementations of an interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TypeCheckError
from ..modes.mode import Mode, modes_of_method
from . import ast

_VIS_RANK = {"public": 2, "protected": 1, "private": 0}


@dataclass
class MethodInfo:
    """A method declaration plus its owner and mode inventory."""

    owner: str
    decl: ast.MethodDecl

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def kind(self) -> str:
        return self.decl.kind

    @property
    def params(self) -> list[ast.Param]:
        return self.decl.params

    @property
    def param_names(self) -> list[str]:
        return [p.name for p in self.decl.params]

    @property
    def is_constructor(self) -> bool:
        return self.decl.is_constructor

    @property
    def abstract(self) -> bool:
        return self.decl.body is None

    def result_type(self) -> ast.Type:
        if self.decl.is_constructor:
            return ast.Type(self.owner)
        assert self.decl.return_type is not None
        return self.decl.return_type

    def modes(self) -> list[Mode]:
        return modes_of_method(self.decl)


@dataclass
class TypeInfo:
    """A class or interface entry."""

    name: str
    decl: ast.ClassDecl | ast.InterfaceDecl | None
    superclass: str | None = None
    interfaces: list[str] = field(default_factory=list)
    fields: dict[str, ast.FieldDecl] = field(default_factory=dict)
    methods: dict[str, MethodInfo] = field(default_factory=dict)
    invariants: list[ast.InvariantDecl] = field(default_factory=list)

    @property
    def is_interface(self) -> bool:
        return isinstance(self.decl, ast.InterfaceDecl)

    @property
    def is_class(self) -> bool:
        return isinstance(self.decl, ast.ClassDecl)


class ProgramTable:
    """All global information about a parsed program."""

    BUILTIN_TYPES = ("Object", "String")

    def __init__(self, program: ast.Program):
        self.program = program
        self.types: dict[str, TypeInfo] = {}
        self.functions: dict[str, ast.FunctionDecl] = {}
        for builtin in self.BUILTIN_TYPES:
            self.types[builtin] = TypeInfo(builtin, None)
        self.types["String"].superclass = "Object"
        for decl in program.declarations:
            if isinstance(decl, ast.FunctionDecl):
                if decl.name in self.functions:
                    raise TypeCheckError(
                        f"duplicate function {decl.name}", decl.span
                    )
                self.functions[decl.name] = decl
            else:
                self._add_type(decl)
        self._check_hierarchy()

    def _add_type(self, decl: ast.ClassDecl | ast.InterfaceDecl) -> None:
        if decl.name in self.types:
            raise TypeCheckError(f"duplicate type {decl.name}", decl.span)
        info = TypeInfo(decl.name, decl)
        if isinstance(decl, ast.InterfaceDecl):
            info.interfaces = list(decl.extends)
            methods = decl.methods
        else:
            info.superclass = decl.superclass or "Object"
            info.interfaces = list(decl.interfaces)
            for f in decl.fields:
                if f.name in info.fields:
                    raise TypeCheckError(
                        f"duplicate field {decl.name}.{f.name}", f.span
                    )
                info.fields[f.name] = f
            methods = decl.methods
        for m in methods:
            if m.name in info.methods:
                raise TypeCheckError(
                    f"duplicate method {decl.name}.{m.name} "
                    "(overloading is not supported; use modes instead)",
                    m.span,
                )
            info.methods[m.name] = MethodInfo(decl.name, m)
        info.invariants = list(decl.invariants)
        self.types[decl.name] = info

    def _check_hierarchy(self) -> None:
        for info in self.types.values():
            if info.superclass and info.superclass not in self.types:
                raise TypeCheckError(
                    f"{info.name} extends unknown type {info.superclass}"
                )
            for iface in info.interfaces:
                target = self.types.get(iface)
                if target is None:
                    raise TypeCheckError(
                        f"{info.name} references unknown interface {iface}"
                    )
                if info.is_class and not target.is_interface:
                    raise TypeCheckError(
                        f"{info.name} implements non-interface {iface}"
                    )
        # Reject inheritance cycles.
        for name in self.types:
            seen: set[str] = set()
            for ancestor in self._ancestry(name):
                if ancestor in seen:
                    raise TypeCheckError(f"inheritance cycle through {ancestor}")
                seen.add(ancestor)

    # -- hierarchy queries ------------------------------------------------

    def _ancestry(self, name: str):
        """All supertypes (including self), breadth-first, may repeat."""
        queue = [name]
        emitted = 0
        while queue and emitted < 10 * len(self.types) + 10:
            current = queue.pop(0)
            emitted += 1
            yield current
            info = self.types.get(current)
            if info is None:
                continue
            if info.superclass:
                queue.append(info.superclass)
            queue.extend(info.interfaces)

    def supertypes(self, name: str) -> list[str]:
        """All supertypes of ``name`` including itself, deduplicated."""
        out: list[str] = []
        for t in self._ancestry(name):
            if t not in out:
                out.append(t)
        return out

    def is_subtype(self, sub: ast.Type, sup: ast.Type) -> bool:
        if sub == sup:
            return True
        if sub == ast.NULL_TYPE and not sup.is_primitive:
            return True
        if sub.is_primitive or sup.is_primitive:
            return False
        if sup.name == "Object":
            return True
        return sup.name in self.supertypes(sub.name)

    def implementations_of(self, name: str) -> list[TypeInfo]:
        """Concrete classes that are subtypes of ``name``."""
        return [
            info
            for info in self.types.values()
            if info.is_class
            and not getattr(info.decl, "abstract", False)
            and name in self.supertypes(info.name)
        ]

    # -- member lookup ------------------------------------------------------

    def lookup_type(self, name: str) -> TypeInfo:
        info = self.types.get(name)
        if info is None:
            raise TypeCheckError(f"unknown type {name}")
        return info

    def lookup_function(self, name: str) -> MethodInfo | None:
        decl = self.functions.get(name)
        if decl is None:
            return None
        return MethodInfo("", decl)  # type: ignore[arg-type]

    def lookup_method(self, type_name: str, method: str) -> MethodInfo | None:
        for ancestor in self.supertypes(type_name):
            info = self.types.get(ancestor)
            if info is not None and method in info.methods:
                return info.methods[method]
        return None

    def lookup_field(self, type_name: str, field_name: str) -> ast.FieldDecl | None:
        for ancestor in self.supertypes(type_name):
            info = self.types.get(ancestor)
            if info is not None and field_name in info.fields:
                return info.fields[field_name]
        return None

    def equality_constructor(self, type_name: str) -> MethodInfo | None:
        """The `equals` equality constructor, if declared (Section 3.2)."""
        method = self.lookup_method(type_name, "equals")
        if method is not None and method.kind == "equality":
            return method
        return None

    def invariants_visible_from(
        self, type_name: str, viewer: str | None
    ) -> list[tuple[str, ast.InvariantDecl]]:
        """Invariants of ``type_name`` and supertypes visible to ``viewer``.

        ``viewer=None`` means client code: only public invariants apply.
        A class sees its own private invariants (Section 4.1).
        """
        out: list[tuple[str, ast.InvariantDecl]] = []
        for ancestor in self.supertypes(type_name):
            info = self.types.get(ancestor)
            if info is None:
                continue
            for inv in info.invariants:
                if inv.visibility == "public" or viewer == ancestor:
                    out.append((ancestor, inv))
        return out

    def all_field_names(self, type_name: str) -> list[str]:
        out: list[str] = []
        for ancestor in self.supertypes(type_name):
            info = self.types.get(ancestor)
            if info is not None:
                out.extend(f for f in info.fields if f not in out)
        return out
