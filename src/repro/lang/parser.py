"""Recursive-descent parser for the JMatch 2.0 subset.

Operator precedence, loosest to tightest (Section 3.3 and the paper's
examples fix the relative order of the pattern operators):

    ``||``  <  ``|`` ``#``  <  ``&&``  <  ``!``  <  comparisons
    <  ``as`` / ``where``  <  ``+ -``  <  ``* / %``  <  unary ``-``
    <  postfix (calls, selections)

With ``|``/``#`` parsed *above* ``&&``, Figure 4's
``zero() && n.zero() | succ(Nat y) && n.succ(y)`` groups as intended.
The other reading the paper requires -- ``x = 1 | 2`` meaning
``x = (1 | 2)`` -- is recovered by a semantic normalisation pass
(:func:`repro.lang.check.normalize_disjunctions`) that distributes the
comparison over value-pattern operands, which is semantically the
same formula.
"""

from __future__ import annotations

from ..errors import NO_SPAN, ParseError, Span
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenKind

_VISIBILITIES = ("public", "protected", "private")


class Parser:
    def __init__(self, tokens: list[Token], filename: str = "<input>"):
        self.tokens = tokens
        self.filename = filename
        self.pos = 0
        #: class/interface names seen so far -- used to resolve whether
        #: ``Foo.bar(...)`` is a static qualifier or a receiver.
        self.type_names: set[str] = set()

    # -- token helpers --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenKind, text: str | None = None) -> bool:
        return self._peek().matches(kind, text)

    def _at_keyword(self, *texts: str) -> bool:
        tok = self._peek()
        return tok.kind == TokenKind.KEYWORD and tok.text in texts

    def _at_op(self, *texts: str) -> bool:
        tok = self._peek()
        return tok.kind == TokenKind.OPERATOR and tok.text in texts

    def _advance(self) -> Token:
        tok = self._peek()
        if not tok.is_eof:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        tok = self._peek()
        if not tok.matches(kind, text):
            wanted = text or kind.value
            raise ParseError(f"expected {wanted!r}, found {tok!r}", tok.span)
        return self._advance()

    def _expect_op(self, text: str) -> Token:
        return self._expect(TokenKind.OPERATOR, text)

    def _expect_keyword(self, text: str) -> Token:
        return self._expect(TokenKind.KEYWORD, text)

    def _expect_ident(self) -> Token:
        return self._expect(TokenKind.IDENT)

    def _accept_op(self, text: str) -> Token | None:
        if self._at_op(text):
            return self._advance()
        return None

    def _accept_keyword(self, text: str) -> Token | None:
        if self._at_keyword(text):
            return self._advance()
        return None

    # -- program structure ------------------------------------------------

    def parse_program(self) -> ast.Program:
        # Pre-scan for type names so forward references resolve.
        for i, tok in enumerate(self.tokens):
            if tok.kind == TokenKind.KEYWORD and tok.text in ("class", "interface"):
                nxt = self.tokens[i + 1] if i + 1 < len(self.tokens) else None
                if nxt is not None and nxt.kind == TokenKind.IDENT:
                    self.type_names.add(nxt.text)
        decls: list = []
        while not self._peek().is_eof:
            decls.append(self._parse_declaration())
        return ast.Program(decls)

    def _parse_declaration(self):
        abstract = bool(self._accept_keyword("abstract"))
        if self._at_keyword("interface"):
            return self._parse_interface()
        if self._at_keyword("class"):
            return self._parse_class(abstract)
        if self._at_keyword("static") or self._looks_like_type():
            return self._parse_function()
        tok = self._peek()
        raise ParseError(f"expected a declaration, found {tok!r}", tok.span)

    def _parse_interface(self) -> ast.InterfaceDecl:
        span = self._expect_keyword("interface").span
        name = self._expect_ident().text
        self.type_names.add(name)
        extends: list[str] = []
        if self._accept_keyword("extends"):
            extends.append(self._expect_ident().text)
            while self._accept_op(","):
                extends.append(self._expect_ident().text)
        self._expect_op("{")
        invariants: list[ast.InvariantDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self._at_op("}"):
            visibility = self._parse_visibility(default="public")
            if self._at_keyword("invariant"):
                invariants.append(self._parse_invariant(visibility))
            else:
                method = self._parse_method(
                    visibility, class_name=name, in_interface=True
                )
                methods.append(method)
        self._expect_op("}")
        return ast.InterfaceDecl(name, extends, invariants, methods, span=span)

    def _parse_class(self, abstract: bool) -> ast.ClassDecl:
        span = self._expect_keyword("class").span
        name = self._expect_ident().text
        self.type_names.add(name)
        superclass: str | None = None
        interfaces: list[str] = []
        if self._accept_keyword("extends"):
            superclass = self._expect_ident().text
        if self._accept_keyword("implements"):
            interfaces.append(self._expect_ident().text)
            while self._accept_op(","):
                interfaces.append(self._expect_ident().text)
        self._expect_op("{")
        fields: list[ast.FieldDecl] = []
        invariants: list[ast.InvariantDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self._at_op("}"):
            visibility = self._parse_visibility(default="public")
            if self._at_keyword("invariant"):
                invariants.append(self._parse_invariant(visibility))
                continue
            if self._is_field_decl():
                fields.append(self._parse_field(visibility))
                continue
            methods.append(
                self._parse_method(visibility, class_name=name, in_interface=False)
            )
        self._expect_op("}")
        return ast.ClassDecl(
            name, interfaces, superclass, fields, invariants, methods,
            abstract=abstract, span=span,
        )

    def _parse_visibility(self, default: str) -> str:
        for vis in _VISIBILITIES:
            if self._accept_keyword(vis):
                return vis
        return default

    def _parse_invariant(self, visibility: str) -> ast.InvariantDecl:
        span = self._expect_keyword("invariant").span
        self._expect_op("(")
        formula = self.parse_formula()
        self._expect_op(")")
        self._expect_op(";")
        return ast.InvariantDecl(visibility, formula, span=span)

    def _is_field_decl(self) -> bool:
        """Lookahead: ``type name ;`` with no parameter list."""
        saved = self.pos
        try:
            if self._accept_keyword("static"):
                pass
            if not self._looks_like_type():
                return False
            self._parse_type()
            if not self._at(TokenKind.IDENT):
                return False
            self._advance()
            return self._at_op(";")
        finally:
            self.pos = saved

    def _parse_field(self, visibility: str) -> ast.FieldDecl:
        self._accept_keyword("static")
        type_ = self._parse_type()
        name_tok = self._expect_ident()
        self._expect_op(";")
        return ast.FieldDecl(visibility, type_, name_tok.text, span=name_tok.span)

    def _looks_like_type(self) -> bool:
        tok = self._peek()
        if tok.kind == TokenKind.KEYWORD and tok.text in ("int", "boolean"):
            return True
        return tok.kind == TokenKind.IDENT

    def _parse_type(self) -> ast.Type:
        tok = self._peek()
        if tok.kind == TokenKind.KEYWORD and tok.text in ("int", "boolean"):
            self._advance()
            return ast.INT_TYPE if tok.text == "int" else ast.BOOLEAN_TYPE
        name = self._expect_ident().text
        return ast.Type(name)

    # -- methods ---------------------------------------------------------

    def _parse_method(
        self, visibility: str, class_name: str, in_interface: bool
    ) -> ast.MethodDecl:
        span = self._peek().span
        static = bool(self._accept_keyword("static"))
        abstract = bool(self._accept_keyword("abstract"))
        kind = "method"
        return_type: ast.Type | None = None
        if self._accept_keyword("constructor"):
            name = self._expect_ident().text
            kind = "equality" if name == "equals" else "constructor"
        elif (
            self._at(TokenKind.IDENT, class_name)
            and self._peek(1).matches(TokenKind.OPERATOR, "(")
        ):
            # A class constructor: `private ZNat(int n) ...`.
            name = self._advance().text
            kind = "class-constructor"
        else:
            return_type = self._parse_type()
            name = self._expect_ident().text
        params = self._parse_params()
        matches, ensures, modes = self._parse_specs_and_modes()
        body = self._parse_method_body(in_interface or abstract)
        return ast.MethodDecl(
            kind=kind,
            visibility=visibility,
            static=static,
            return_type=return_type,
            name=name,
            params=params,
            modes=modes,
            matches=matches,
            ensures=ensures,
            body=body,
            abstract=in_interface or abstract or body is None,
            span=span,
        )

    def _parse_function(self) -> ast.FunctionDecl:
        span = self._peek().span
        self._accept_keyword("static")
        return_type = self._parse_type()
        name = self._expect_ident().text
        params = self._parse_params()
        matches, ensures, modes = self._parse_specs_and_modes()
        body = self._parse_method_body(allow_abstract=False)
        return ast.FunctionDecl(
            return_type, name, params, modes, matches, ensures, body, span=span
        )

    def _parse_params(self) -> list[ast.Param]:
        self._expect_op("(")
        params: list[ast.Param] = []
        if not self._at_op(")"):
            while True:
                type_ = self._parse_type()
                name_tok = self._expect_ident()
                params.append(ast.Param(type_, name_tok.text, span=name_tok.span))
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return params

    def _parse_specs_and_modes(self):
        matches: ast.Expr | None = None
        ensures: ast.Expr | None = None
        modes: list[ast.ModeDecl] = []
        while True:
            if self._at_keyword("matches"):
                self._advance()
                if self._accept_keyword("ensures"):
                    # `matches ensures(f)` shorthand (Section 4.5).
                    self._expect_op("(")
                    formula = self.parse_formula()
                    self._expect_op(")")
                    matches = formula
                    ensures = formula
                else:
                    self._expect_op("(")
                    matches = self.parse_formula()
                    self._expect_op(")")
            elif self._at_keyword("ensures"):
                self._advance()
                self._expect_op("(")
                ensures = self.parse_formula()
                self._expect_op(")")
            elif self._at_keyword("returns") or self._at_keyword("iterates"):
                tok = self._advance()
                self._expect_op("(")
                names: list[str] = []
                if not self._at_op(")"):
                    while True:
                        names.append(self._expect_ident().text)
                        if not self._accept_op(","):
                            break
                self._expect_op(")")
                modes.append(
                    ast.ModeDecl(tok.text == "iterates", names, span=tok.span)
                )
            else:
                return matches, ensures, modes

    def _parse_method_body(self, allow_abstract: bool):
        if self._accept_op(";"):
            return None
        if self._at_op("{"):
            return self._parse_block()
        if self._at_op("("):
            # Declarative formula body.
            self._expect_op("(")
            formula = self.parse_formula()
            self._expect_op(")")
            return formula
        tok = self._peek()
        raise ParseError(f"expected a method body, found {tok!r}", tok.span)

    # -- statements ------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        span = self._expect_op("{").span
        statements: list[ast.Stmt] = []
        while not self._at_op("}"):
            statements.append(self._parse_statement())
        self._expect_op("}")
        return ast.Block(statements, span=span)

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if self._at_op("{"):
            return self._parse_block()
        if self._at_keyword("let"):
            self._advance()
            formula = self.parse_formula()
            self._expect_op(";")
            return ast.LetStmt(formula, span=tok.span)
        if self._at_keyword("switch"):
            return self._parse_switch()
        if self._at_keyword("cond"):
            return self._parse_cond()
        if self._at_keyword("if"):
            return self._parse_if()
        if self._at_keyword("foreach"):
            self._advance()
            self._expect_op("(")
            formula = self.parse_formula()
            self._expect_op(")")
            body = self._statement_as_list()
            return ast.ForeachStmt(formula, body, span=tok.span)
        if self._at_keyword("while"):
            self._advance()
            self._expect_op("(")
            condition = self.parse_formula()
            self._expect_op(")")
            body = self._statement_as_list()
            return ast.WhileStmt(condition, body, span=tok.span)
        if self._at_keyword("return"):
            self._advance()
            value = None
            if not self._at_op(";"):
                value = self.parse_formula()
            self._expect_op(";")
            return ast.ReturnStmt(value, span=tok.span)
        # Local declaration without initialiser: `T x;`
        if self._is_local_decl():
            type_ = self._parse_type()
            name = self._expect_ident().text
            self._expect_op(";")
            return ast.LocalDecl(type_, name, span=tok.span)
        # Bare formula statements. `T x = e;` is sugar for `let ...`;
        # `x = e;` with x already bound is imperative assignment, decided
        # by the interpreter since only it knows the environment.
        formula = self.parse_formula()
        self._expect_op(";")
        return ast.ExprStmt(formula, span=tok.span)

    def _is_local_decl(self) -> bool:
        saved = self.pos
        try:
            if not self._looks_like_type():
                return False
            self._parse_type()
            if not self._at(TokenKind.IDENT):
                return False
            self._advance()
            return self._at_op(";")
        finally:
            self.pos = saved

    def _statement_as_list(self) -> list[ast.Stmt]:
        stmt = self._parse_statement()
        if isinstance(stmt, ast.Block):
            return stmt.statements
        return [stmt]

    def _parse_switch(self) -> ast.SwitchStmt:
        span = self._expect_keyword("switch").span
        self._expect_op("(")
        subjects = [self.parse_formula()]
        while self._accept_op(","):
            subjects.append(self.parse_formula())
        self._expect_op(")")
        subject = (
            subjects[0]
            if len(subjects) == 1
            else ast.TupleExpr(subjects, span=span)
        )
        self._expect_op("{")
        cases: list[ast.SwitchCase] = []
        default: list[ast.Stmt] | None = None
        pending_patterns: list[ast.Expr] = []
        while not self._at_op("}"):
            if self._at_keyword("case"):
                case_span = self._advance().span
                pattern = self.parse_formula()
                self._expect_colon()
                pending_patterns.append(pattern)
                body = self._parse_case_body()
                if body or self._at_op("}") or self._at_keyword("default"):
                    cases.append(
                        ast.SwitchCase(pending_patterns, body, span=case_span)
                    )
                    pending_patterns = []
            elif self._at_keyword("default"):
                self._advance()
                self._expect_colon()
                default = self._parse_case_body()
                if pending_patterns:
                    # `case p: default: body` -- share the body.
                    cases.append(ast.SwitchCase(pending_patterns, [], span=span))
                    pending_patterns = []
            else:
                tok = self._peek()
                raise ParseError(
                    f"expected 'case' or 'default', found {tok!r}", tok.span
                )
        self._expect_op("}")
        if pending_patterns:
            cases.append(ast.SwitchCase(pending_patterns, [], span=span))
        return ast.SwitchStmt(subject, cases, default, span=span)

    def _expect_colon(self) -> None:
        # `:` is not in the operator table as a standalone token... it is
        # required by case labels, so accept it specially.
        tok = self._peek()
        if tok.kind == TokenKind.OPERATOR and tok.text == ":":
            self._advance()
            return
        raise ParseError(f"expected ':', found {tok!r}", tok.span)

    def _parse_case_body(self) -> list[ast.Stmt]:
        body: list[ast.Stmt] = []
        while not (
            self._at_keyword("case")
            or self._at_keyword("default")
            or self._at_op("}")
        ):
            body.append(self._parse_statement())
        return body

    def _parse_cond(self) -> ast.CondStmt:
        span = self._expect_keyword("cond").span
        self._expect_op("{")
        arms: list[ast.CondArm] = []
        else_body: list[ast.Stmt] | None = None
        while not self._at_op("}"):
            if self._accept_keyword("else"):
                else_body = self._statement_as_list()
                break
            arm_span = self._expect_op("(").span
            formula = self.parse_formula()
            self._expect_op(")")
            body = self._statement_as_list()
            arms.append(ast.CondArm(formula, body, span=arm_span))
        self._expect_op("}")
        return ast.CondStmt(arms, else_body, span=span)

    def _parse_if(self) -> ast.IfStmt:
        span = self._expect_keyword("if").span
        self._expect_op("(")
        condition = self.parse_formula()
        self._expect_op(")")
        then_body = self._statement_as_list()
        else_body: list[ast.Stmt] | None = None
        if self._accept_keyword("else"):
            else_body = self._statement_as_list()
        return ast.IfStmt(condition, then_body, else_body, span=span)

    # -- formulas / patterns / expressions ---------------------------------

    def parse_formula(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_disjunction()
        while self._at_op("||"):
            span = self._advance().span
            right = self._parse_disjunction()
            left = ast.Binary("||", left, right, span=span)
        return left

    def _parse_disjunction(self) -> ast.Expr:
        left = self._parse_and()
        while self._at_op("|") or self._at_op("#"):
            op = self._advance()
            right = self._parse_and()
            left = ast.PatOr(left, right, disjoint=op.text == "|", span=op.span)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._at_op("&&"):
            span = self._advance().span
            right = self._parse_not()
            left = ast.Binary("&&", left, right, span=span)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._at_op("!"):
            span = self._advance().span
            return ast.Not(self._parse_not(), span=span)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_as_where()
        if self._at_op("=", "!=", "<", "<=", ">", ">="):
            op = self._advance()
            right = self._parse_as_where()
            return ast.Binary(op.text, left, right, span=op.span)
        return left

    def _parse_as_where(self) -> ast.Expr:
        expr = self._parse_additive()
        while True:
            if self._at_keyword("as"):
                span = self._advance().span
                right = self._parse_additive()
                expr = ast.PatAnd(expr, right, span=span)
            elif self._at_keyword("where"):
                span = self._advance().span
                if self._at_op("("):
                    self._advance()
                    condition = self.parse_formula()
                    self._expect_op(")")
                else:
                    condition = self._parse_comparison()
                expr = ast.Where(expr, condition, span=span)
            else:
                return expr

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._at_op("+", "-"):
            op = self._advance()
            right = self._parse_multiplicative()
            left = ast.Binary(op.text, left, right, span=op.span)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_prefix()
        while self._at_op("*", "/", "%"):
            op = self._advance()
            right = self._parse_prefix()
            left = ast.Binary(op.text, left, right, span=op.span)
        return left

    def _parse_prefix(self) -> ast.Expr:
        if self._at_op("-"):
            span = self._advance().span
            operand = self._parse_prefix()
            return ast.Binary("-", ast.Lit(0, span=span), operand, span=span)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._at_op("."):
            self._advance()
            name_tok = self._expect_ident()
            if self._at_op("("):
                args = self._parse_args()
                # `Foo.bar(...)` with Foo a known type is a static-
                # qualified call, not a method on an object.
                if (
                    isinstance(expr, ast.Var)
                    and expr.name in self.type_names
                ):
                    expr = ast.Call(
                        None, expr.name, name_tok.text, args, span=name_tok.span
                    )
                else:
                    expr = ast.Call(
                        expr, None, name_tok.text, args, span=name_tok.span
                    )
            else:
                expr = ast.FieldAccess(expr, name_tok.text, span=name_tok.span)
        return expr

    def _parse_args(self) -> list[ast.Expr]:
        self._expect_op("(")
        args: list[ast.Expr] = []
        if not self._at_op(")"):
            while True:
                args.append(self.parse_formula())
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return args

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == TokenKind.INT_LIT:
            self._advance()
            return ast.Lit(int(tok.text), span=tok.span)
        if tok.kind == TokenKind.STRING_LIT:
            self._advance()
            return ast.Lit(tok.text, span=tok.span)
        if self._at_keyword("true"):
            self._advance()
            return ast.Lit(True, span=tok.span)
        if self._at_keyword("false"):
            self._advance()
            return ast.Lit(False, span=tok.span)
        if self._at_keyword("null"):
            self._advance()
            return ast.Lit(None, span=tok.span)
        if self._at_keyword("this"):
            self._advance()
            return ast.Var("this", span=tok.span)
        if self._at_op("_"):
            self._advance()
            return ast.Wildcard(span=tok.span)
        if self._at_keyword("notall"):
            self._advance()
            self._expect_op("(")
            names: list[str] = []
            if not self._at_op(")"):
                while True:
                    names.append(self._expect_ident().text)
                    if not self._accept_op(","):
                        break
            self._expect_op(")")
            return ast.NotAll(names, span=tok.span)
        if self._at_keyword("new"):
            # `new Foo(args)` is accepted as a synonym for `Foo(args)`.
            self._advance()
            name = self._expect_ident().text
            args = self._parse_args()
            return ast.Call(None, None, name, args, span=tok.span)
        if self._at_keyword("int") or self._at_keyword("boolean"):
            type_ = self._parse_type()
            return self._parse_decl_pattern(type_, tok.span)
        if self._at_op("("):
            self._advance()
            items = [self.parse_formula()]
            while self._accept_op(","):
                items.append(self.parse_formula())
            self._expect_op(")")
            if len(items) == 1:
                return items[0]
            return ast.TupleExpr(items, span=tok.span)
        if tok.kind == TokenKind.IDENT:
            self._advance()
            if self._at_op("("):
                args = self._parse_args()
                return ast.Call(None, None, tok.text, args, span=tok.span)
            if self._at(TokenKind.IDENT) or self._at_op("_"):
                # `Nat x` / `Nat _` declaration pattern.
                return self._parse_decl_pattern(ast.Type(tok.text), tok.span)
            return ast.Var(tok.text, span=tok.span)
        raise ParseError(f"expected an expression, found {tok!r}", tok.span)

    def _parse_decl_pattern(self, type_: ast.Type, span: Span) -> ast.Expr:
        if self._at_op("_"):
            self._advance()
            return ast.VarDecl(type_, None, span=span)
        name = self._expect_ident().text
        return ast.VarDecl(type_, name, span=span)


def parse_program(source: str, filename: str = "<input>") -> ast.Program:
    """Parse a complete compilation unit."""
    return Parser(tokenize(source, filename), filename).parse_program()


def parse_formula(source: str, type_names: set[str] | None = None) -> ast.Expr:
    """Parse a standalone formula (handy in tests)."""
    parser = Parser(tokenize(source), "<formula>")
    if type_names:
        parser.type_names |= type_names
    expr = parser.parse_formula()
    if not parser._peek().is_eof:
        raise ParseError(
            f"unexpected trailing input {parser._peek()!r}", parser._peek().span
        )
    return expr
