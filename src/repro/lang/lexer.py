"""Lexer for the JMatch 2.0 subset.

Hand-written maximal-munch scanner.  A bare ``_`` is its own token (the
wildcard pattern); identifiers may still contain underscores elsewhere
(``create$foo``-style names from the translation of Section 6.1 use
``$``, which is allowed in identifier tails like in Java).
"""

from __future__ import annotations

from ..errors import LexError, Position, Span
from .tokens import KEYWORDS, OPERATORS, Token, TokenKind


def _ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_" or ch == "$"


def _ident_part(ch: str) -> bool:
    return ch.isalnum() or ch == "_" or ch == "$"


class Lexer:
    def __init__(self, source: str, filename: str = "<input>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def _position(self) -> Position:
        return Position(self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._position()
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexError(
                        "unterminated block comment",
                        Span(start, self._position(), self.filename),
                    )
                self._advance(2)
            else:
                break

    def tokens(self) -> list[Token]:
        """Scan the entire source into a token list ending with EOF."""
        out: list[Token] = []
        while True:
            self._skip_trivia()
            start = self._position()
            if self.pos >= len(self.source):
                out.append(
                    Token(TokenKind.EOF, "", Span(start, start, self.filename))
                )
                return out
            ch = self._peek()
            if ch.isdigit():
                out.append(self._scan_number(start))
            elif ch == '"':
                out.append(self._scan_string(start))
            elif _ident_start(ch):
                out.append(self._scan_word(start))
            else:
                out.append(self._scan_operator(start))

    def _scan_number(self, start: Position) -> Token:
        begin = self.pos
        while self._peek().isdigit():
            self._advance()
        if _ident_start(self._peek()):
            raise LexError(
                f"malformed number near {self.source[begin:self.pos + 1]!r}",
                Span(start, self._position(), self.filename),
            )
        text = self.source[begin : self.pos]
        return Token(TokenKind.INT_LIT, text, Span(start, self._position(), self.filename))

    def _scan_string(self, start: Position) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError(
                    "unterminated string literal",
                    Span(start, self._position(), self.filename),
                )
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                escape = self._peek()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if escape not in mapping:
                    raise LexError(
                        f"unknown escape \\{escape}",
                        Span(start, self._position(), self.filename),
                    )
                chars.append(mapping[escape])
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        return Token(
            TokenKind.STRING_LIT,
            "".join(chars),
            Span(start, self._position(), self.filename),
        )

    def _scan_word(self, start: Position) -> Token:
        begin = self.pos
        while _ident_part(self._peek()):
            self._advance()
        text = self.source[begin : self.pos]
        span = Span(start, self._position(), self.filename)
        if text == "_":
            return Token(TokenKind.OPERATOR, "_", span)
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, span)

    def _scan_operator(self, start: Position) -> Token:
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                # `==` is accepted as a synonym for JMatch's `=` equality.
                text = "=" if op == "==" else op
                return Token(
                    TokenKind.OPERATOR,
                    text,
                    Span(start, self._position(), self.filename),
                )
        raise LexError(
            f"unexpected character {self._peek()!r}",
            Span(start, self._position(), self.filename),
        )


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: source text to token list."""
    return Lexer(source, filename).tokens()
