"""Runtime builtins needed by the corpus programs.

``freshVar(prefix, e)`` must be *deterministic in its arguments*: the
backward mode of CPS re-solves the same formula and tests the variable
it matched against a regenerated one, so two calls with the same
expression must produce the same name.  We pick the first of
``prefix, prefix0, prefix1, ...`` not occurring free in ``e``.
"""

from __future__ import annotations

from ..runtime import Interpreter, JObject, Value


def _names_in(value: Value, out: set[str]) -> None:
    if isinstance(value, JObject):
        if value.class_name == "Var" and isinstance(value.fields.get("name"), str):
            out.add(value.fields["name"])
        for field_value in value.fields.values():
            _names_in(field_value, out)
    elif isinstance(value, tuple):
        for item in value:
            _names_in(item, out)


def fresh_var(prefix: str, expr: Value) -> JObject:
    """A Var object whose name does not occur in ``expr``."""
    used: set[str] = set()
    _names_in(expr, used)
    if prefix not in used:
        return JObject("Var", {"name": prefix})
    index = 0
    while f"{prefix}{index}" in used:
        index += 1
    return JObject("Var", {"name": f"{prefix}{index}"})


def install_builtins(interp: Interpreter) -> Interpreter:
    """Register corpus builtins on an interpreter; returns it."""
    interp.register_builtin("freshVar", fresh_var)
    return interp
