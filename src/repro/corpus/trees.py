"""Binary trees and AVL rebalancing (Figure 13).

The interesting verification target: ``rebalance``'s four-arm ``cond``
is exhaustive *given* the Tree invariant, the ``ensures`` clause of
``branch`` (relating a branch's height to its children's), and the
path condition that the input is unbalanced.  This was the paper's
most expensive verification (AVLTree: 18.7 s with their prototype).
"""

TREE_INTERFACE = """\
interface Tree {
  invariant(leaf() | branch(_, _, _));
  constructor leaf()
    matches(height() = 0) ensures(height() = 0) returns();
  constructor branch(Tree l, int v, Tree r)
    matches(height() > 0)
    ensures(height() > 0 &&
            (height() = l.height() + 1 && height() > r.height()
             || height() > l.height() && height() = r.height() + 1))
    returns(l, v, r);
  int height() ensures(result >= 0);
}
"""

TREE_LEAF = """\
class TreeLeaf implements Tree {
  constructor leaf() returns()
    ( true )
  constructor branch(Tree l, int v, Tree r) returns(l, v, r)
    ( false )
  int height() ensures(result >= 0)
    ( result = 0 )
}
"""

TREE_BRANCH = """\
class TreeBranch implements Tree {
  Tree left;
  int value;
  Tree right;
  int h;
  private invariant(h >= 1);
  constructor leaf() returns()
    ( false )
  constructor branch(Tree l, int v, Tree r) returns(l, v, r)
    ( left = l && value = v && right = r &&
      (h = l.height() + 1 && l.height() >= r.height()
       || h = r.height() + 1 && r.height() > l.height()) )
  int height() ensures(result >= 0)
    ( result = h )
}
"""

AVL_TREE = """\
class AVLTree {
  Tree root;
  AVLTree(Tree t) returns(t)
    ( root = t )
  boolean has(int x)
    ( member(root, x) )
  AVLTree add(int x)
    ( result = AVLTree(insert(root, x)) )
}

static Tree rebalance(Tree l, int v, Tree r) {
  if (l.height() - r.height() > 1 || r.height() - l.height() > 1)
    cond {
      (l.height() - r.height() > 1
       && l = branch(Tree ll, int y, Tree c)
       && ll = branch(Tree a, int x, Tree b)
       && ll.height() >= c.height()
       && int z = v && Tree d = r)
      { return TreeBranch.branch(TreeBranch.branch(a, x, b), y,
                                 TreeBranch.branch(c, z, d)); }
      (l.height() - r.height() > 1
       && l = branch(Tree a, int x, Tree lr)
       && lr = branch(Tree b, int y, Tree c)
       && a.height() < lr.height()
       && int z = v && Tree d = r)
      { return TreeBranch.branch(TreeBranch.branch(a, x, b), y,
                                 TreeBranch.branch(c, z, d)); }
      (r.height() - l.height() > 1
       && Tree a = l && int x = v
       && r = branch(Tree rl, int z, Tree d)
       && rl = branch(Tree b, int y, Tree c)
       && rl.height() > d.height())
      { return TreeBranch.branch(TreeBranch.branch(a, x, b), y,
                                 TreeBranch.branch(c, z, d)); }
      (r.height() - l.height() > 1
       && Tree a = l && int x = v
       && r = branch(Tree b, int y, Tree rr)
       && rr = branch(Tree c, int z, Tree d)
       && b.height() <= rr.height())
      { return TreeBranch.branch(TreeBranch.branch(a, x, b), y,
                                 TreeBranch.branch(c, z, d)); }
    }
  return TreeBranch.branch(l, v, r);
}

static Tree insert(Tree t, int x) {
  switch (t) {
    case leaf():
      return TreeBranch.branch(TreeLeaf.leaf(), x, TreeLeaf.leaf());
    case branch(Tree l, int v, Tree r):
      cond {
        (x < v) { return rebalance(insert(l, x), v, r); }
        (x = v) { return t; }
        (x > v) { return rebalance(l, v, insert(r, x)); }
      }
  }
}

static boolean member(Tree t, int x) {
  switch (t) {
    case leaf(): return false;
    case branch(Tree l, int v, Tree r):
      cond {
        (x < v) { return member(l, x); }
        (x = v) { return true; }
        (x > v) { return member(r, x); }
      }
  }
}
"""

ROWS = {
    "Tree": TREE_INTERFACE,
    "TreeLeaf": TREE_LEAF,
    "TreeBranch": TREE_BRANCH,
    "AVLTree": AVL_TREE,
}

PROGRAM = TREE_INTERFACE + TREE_LEAF + TREE_BRANCH + AVL_TREE
