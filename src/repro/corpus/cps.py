"""Lambda-calculus ASTs and invertible CPS conversion (Figure 5).

``CPS`` is a single declarative relation between source and
CPS-converted expressions; its forward mode converts and its backward
mode (``let CPS(Expr source) = target``) *un-converts*.  The tuple
alternatives combined with ``|`` make the relation one-to-one, and the
compiler can prove the three cases disjoint because the alternatives
start with distinct concrete AST classes.

``freshVar(prefix, e)`` is the paper's fresh-name helper; the runtime
provides it as a builtin (deterministic in its arguments so that the
backward mode re-derives the same names -- see corpus.support).
"""

EXPR_INTERFACE = """\
interface Expr {
  invariant(this = Var _ | Lambda _ | TypedLambda _ | Apply _);
  constructor equals(Expr e);
}
"""

VARIABLE = """\
class Var implements Expr {
  String name;
  Var(String n) matches(true) returns(n)
    ( name = n )
  constructor equals(Expr e)
    ( Var(String n2) = e && name = n2 )
}
"""

LAMBDA = """\
class Lambda implements Expr {
  Var param;
  Expr body;
  Lambda(Var v, Expr b) matches(true) returns(v, b)
    ( param = v && body = b )
  constructor equals(Expr e)
    ( Lambda(Var v2, Expr b2) = e && param = v2 && body = b2 )
}
"""

TYPED_LAMBDA = """\
class TypedLambda implements Expr {
  Var param;
  Type ptype;
  Expr body;
  TypedLambda(Var v, Type t, Expr b) matches(true) returns(v, t, b)
    ( param = v && ptype = t && body = b )
  constructor equals(Expr e)
    ( TypedLambda(Var v2, Type t2, Expr b2) = e
      && param = v2 && ptype = t2 && body = b2 )
}
"""

APPLY = """\
class Apply implements Expr {
  Expr fn;
  Expr arg;
  Apply(Expr f, Expr a) matches(true) returns(f, a)
    ( fn = f && arg = a )
  constructor equals(Expr e)
    ( Apply(Expr f2, Expr a2) = e && fn = f2 && arg = a2 )
}
"""

CPS_FUNCTION = """\
static Expr CPS(Expr e) returns(e) (
  Var k = freshVar("k", e) &&
  (e, result) =
      (Var _ as Var ve,
       Lambda(k, Apply(k, ve)))
    | (Lambda(Var vl, Expr body),
       Lambda(k,
         Apply(k, Lambda(vl,
           Lambda(k, Apply(CPS(body), k))))))
    | ((Apply(Expr fn, Expr arg),
       Lambda(k, Apply(CPS(fn),
         Lambda(f, Apply(CPS(arg),
           Lambda(Var("v") as Var va,
             Apply(Apply(f, va), k)))))))
       where Var f = freshVar("f", arg))
)
"""

ROWS = {
    "Expr": EXPR_INTERFACE,
    "Variable": VARIABLE,
    "Lambda": LAMBDA,
    "TypedLambda": TYPED_LAMBDA,
    "Apply": APPLY,
    "CPS": CPS_FUNCTION,
}

# TypedLambda references Type, declared in the typeinf group; the CPS
# program carries a minimal Type interface so it stands alone.
_MIN_TYPE = "interface Type { }\n"

PROGRAM = (
    _MIN_TYPE
    + EXPR_INTERFACE
    + VARIABLE
    + LAMBDA
    + TYPED_LAMBDA
    + APPLY
    + CPS_FUNCTION
)
