"""Immutable lists: four interoperating implementations (Figure 12).

* ``EmptyList`` -- the empty list,
* ``ConsList``  -- regular cons cells,
* ``SnocList``  -- element appended at the end,
* ``ArrList``   -- an index into a shared backing store (our stand-in
  for the paper's shared-array representation: tails share the store).

All four support ``nil``/``cons``/``snoc``/``reverse`` as multimodal
named constructors, so ``snoc`` and ``reverse`` work as *patterns*
(the paper's ``case snoc(List t, _)`` and ``let l = reverse(List r)``).
``rev`` is a static helper with a ``matches(true)`` guarantee and an
involution ``ensures`` clause, which is exactly what lets the
``reverse`` constructors verify total.
"""

LIST_INTERFACE = """\
interface List {
  invariant(this = nil() | cons(_, _));
  constructor nil() matches(notall(result)) returns();
  constructor cons(Object hd, List tl)
    matches(notall(result)) returns(hd, tl);
  constructor snoc(List hd, Object tl)
    matches ensures(cons(_, _)) returns(hd, tl);
  constructor equals(List l);
  constructor reverse(List l) matches(true) returns(l);
  boolean contains(Object elem) iterates(elem);
  int size() ensures(result >= 0);
}
"""

EMPTY_LIST = """\
class EmptyList implements List {
  constructor nil() returns()
    ( true )
  constructor cons(Object hd, List tl) returns(hd, tl)
    ( false )
  constructor snoc(List hd, Object tl) returns(hd, tl)
    ( false )
  constructor equals(List l)
    ( l.nil() )
  constructor reverse(List l) matches(true) returns(l)
    ( l = rev(result) && result = rev(l) )
  boolean contains(Object elem) iterates(elem)
    ( false )
  int size() ensures(result >= 0)
    ( result = 0 )
}
"""

CONS_LIST = """\
class ConsList implements List {
  Object hd;
  List tl;
  constructor nil() returns()
    ( false )
  constructor cons(Object h, List t) returns(h, t)
    ( hd = h && tl = t )
  constructor snoc(List h, Object t) returns(h, t)
    ( h = EmptyList.nil() && cons(t, h)
    | h = cons(Object hh, List ht) && cons(hh, snoc(ht, t)) )
  constructor equals(List l)
    ( cons(Object h, List t) && l.cons(h, t) )
  constructor reverse(List l) matches(true) returns(l)
    ( l = rev(result) && result = rev(l) )
  boolean contains(Object elem) iterates(elem)
    ( cons(Object h, List t) && (elem = h || t.contains(elem)) )
  int size() ensures(result >= 0)
    ( cons(_, List t) && result = t.size() + 1 )
}
"""

SNOC_LIST = """\
class SnocList implements List {
  List front;
  Object back;
  constructor nil() returns()
    ( false )
  constructor cons(Object h, List t) returns(h, t)
    ( front.nil() && h = back && t = front
    | front = cons(Object h2, List t2) && h = h2 && t = snoc(t2, back) )
  constructor snoc(List h, Object t) returns(h, t)
    ( front = h && back = t )
  constructor equals(List l)
    ( cons(Object h, List t) && l.cons(h, t) )
  constructor reverse(List l) matches(true) returns(l)
    ( l = rev(result) && result = rev(l) )
  boolean contains(Object elem) iterates(elem)
    ( snoc(List f, Object b) && (elem = b || f.contains(elem)) )
  int size() ensures(result >= 0)
    ( snoc(List f, _) && result = f.size() + 1 )
}
"""

ARR_LIST = """\
class Store {
  Object head;
  Store rest;
  constructor put(Object v, Store r) returns(v, r)
    ( head = v && rest = r )
}
class ArrList implements List {
  Store store;
  int len;
  private invariant(len >= 0);
  private ArrList(Store s, int n) matches ensures(n >= 0) returns(s, n)
    ( store = s && len = n && n >= 0 )
  constructor nil() returns()
    ( len = 0 && store = null )
  constructor cons(Object h, List t) returns(h, t)
    ( len >= 1 && store = Store.put(h, Store r) && ArrList(r, len - 1) = t )
  constructor snoc(List h, Object t) returns(h, t)
    ( h = EmptyList.nil() && cons(t, h)
    | h = cons(Object hh, List ht) && cons(hh, snoc(ht, t)) )
  constructor equals(List l)
    ( nil() && l.nil() | cons(Object h, List t) && l.cons(h, t) )
  constructor reverse(List l) matches(true) returns(l)
    ( l = rev(result) && result = rev(l) )
  boolean contains(Object elem) iterates(elem)
    ( cons(Object h, List t) && (elem = h || t.contains(elem)) )
  int size() ensures(result >= 0)
    ( result = len )
}
"""

FUNCTIONS = """\
static List rev(List l) matches(true) ensures(l = rev(result)) {
  switch (l) {
    case nil(): return l;
    case cons(Object h, List t): return ConsList.snoc(rev(t), h);
  }
}

static int length(List l) {
  switch (l) {
    case nil(): return 0;
    case cons(_, List t): return length(t) + 1;
  }
}

static List append(List a, List b) {
  switch (a) {
    case nil(): return b;
    case cons(Object h, List t): return ConsList.cons(h, append(t, b));
  }
}
"""

#: Figure 12's deliberately redundant `length`: the cons case can never
#: be reached after the snoc case, because snoc ensures cons(_, _).
LENGTH_REDUNDANT = """\
static int lengthRedundant(List l) {
  switch (l) {
    case nil(): return 0;
    case snoc(List t, _): return lengthRedundant(t) + 1;
    case cons(_, List t): return lengthRedundant(t) + 1;
  }
}
"""

ROWS = {
    "List": LIST_INTERFACE,
    "EmptyList": EMPTY_LIST,
    "ConsList": CONS_LIST,
    "SnocList": SNOC_LIST,
    "ArrList": ARR_LIST,
}

PROGRAM = (
    LIST_INTERFACE + EMPTY_LIST + CONS_LIST + SNOC_LIST + ARR_LIST + FUNCTIONS
)

PROGRAM_WITH_REDUNDANT = PROGRAM + LENGTH_REDUNDANT
