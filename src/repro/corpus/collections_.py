"""Collection classes in the style of the JMatch collections framework.

Functional (persistent) renditions of the four Table 1 collection
rows: ``ArrayList`` (store + length, tails shared), ``LinkedList``
(cells), ``HashMap`` (four bucket chains selected by a modulus hash),
and ``TreeMap`` (a red-black tree).

Per Section 7.3, TreeMap's ``balance`` carries no red-black invariants,
so its ``cond`` is *expected* to draw a nonexhaustive warning -- that
warning is part of the reproduction, not a defect.
"""

ARRAY_LIST = """\
class Cell {
  Object head;
  Cell rest;
  constructor put(Object v, Cell r) matches(notall(result)) returns(v, r)
    ( head = v && rest = r )
}
class ArrayList {
  Cell store;
  int len;
  private invariant(len >= 0);
  private ArrayList(Cell s, int n) matches ensures(n >= 0) returns(s, n)
    ( store = s && len = n && n >= 0 )
  constructor empty() matches(notall(result)) returns()
    ( len = 0 && store = null )
  constructor push(Object h, ArrayList t)
    matches(notall(result)) returns(h, t)
    ( len >= 1 && store = Cell.put(h, Cell r) && ArrayList(r, len - 1) = t )
  boolean contains(Object elem) iterates(elem)
    ( push(Object h, ArrayList t) && (elem = h || t.contains(elem)) )
  int size() ensures(result >= 0)
    ( result = len )
  Object get(int i)
    ( push(Object h, ArrayList t) &&
      (i = 0 && result = h || i >= 1 && result = t.get(i - 1)) )
}
static ArrayList arrayListOf3(Object a, Object b, Object c) {
  return ArrayList.push(a, ArrayList.push(b, ArrayList.push(c,
         ArrayList.empty())));
}
"""

LINKED_LIST = """\
interface Seq {
  invariant(this = snil() | scons(_, _));
  constructor snil() matches(notall(result)) returns();
  constructor scons(Object hd, Seq tl)
    matches(notall(result)) returns(hd, tl);
  boolean contains(Object elem) iterates(elem);
  int size() ensures(result >= 0);
}
class SeqNil implements Seq {
  constructor snil() returns() ( true )
  constructor scons(Object hd, Seq tl) returns(hd, tl) ( false )
  boolean contains(Object elem) iterates(elem) ( false )
  int size() ensures(result >= 0) ( result = 0 )
}
class LinkedList implements Seq {
  Object hd;
  Seq tl;
  constructor snil() returns() ( false )
  constructor scons(Object h, Seq t) returns(h, t)
    ( hd = h && tl = t )
  boolean contains(Object elem) iterates(elem)
    ( elem = hd || tl.contains(elem) )
  int size() ensures(result >= 0)
    ( result = tl.size() + 1 )
}
static Seq seqAppend(Seq a, Seq b) {
  switch (a) {
    case snil(): return b;
    case scons(Object h, Seq t):
      return LinkedList.scons(h, seqAppend(t, b));
  }
}
static int seqLength(Seq s) {
  switch (s) {
    case snil(): return 0;
    case scons(_, Seq t): return seqLength(t) + 1;
  }
}
"""

HASH_MAP = """\
class Bucket {
  int key;
  Object val;
  Bucket next;
  constructor entry(int k, Object v, Bucket n)
    matches(notall(result)) returns(k, v, n)
    ( key = k && val = v && next = n )
  boolean find(int k, Object v) iterates(k, v)
    ( k = key && v = val || next != null && next.find(k, v) )
  boolean hasKey(int k)
    ( k = key || next != null && next.hasKey(k) )
}
class HashMap {
  Bucket b0;
  Bucket b1;
  Bucket b2;
  Bucket b3;
  invariant(this = table(_, _, _, _));
  constructor table(Bucket x0, Bucket x1, Bucket x2, Bucket x3)
    matches(notall(result)) returns(x0, x1, x2, x3)
    ( b0 = x0 && b1 = x1 && b2 = x2 && b3 = x3 )
}
static HashMap emptyMap() {
  return HashMap.table(null, null, null, null);
}
static int slot(int k) matches(true) ensures(result >= 0 && result <= 3) {
  let int h = k % 4;
  cond {
    (h < 0) { return h + 4; }
    (h >= 0) { return h; }
  }
}
static HashMap mapPut(HashMap m, int k, Object v) {
  let m = table(Bucket x0, Bucket x1, Bucket x2, Bucket x3);
  switch (slot(k)) {
    case 0: return HashMap.table(Bucket.entry(k, v, x0), x1, x2, x3);
    case 1: return HashMap.table(x0, Bucket.entry(k, v, x1), x2, x3);
    case 2: return HashMap.table(x0, x1, Bucket.entry(k, v, x2), x3);
    case 3: return HashMap.table(x0, x1, x2, Bucket.entry(k, v, x3));
  }
}
static boolean mapHas(HashMap m, int k) {
  let m = table(Bucket x0, Bucket x1, Bucket x2, Bucket x3);
  switch (slot(k)) {
    case 0: return x0 != null && x0.hasKey(k);
    case 1: return x1 != null && x1.hasKey(k);
    case 2: return x2 != null && x2.hasKey(k);
    case 3: return x3 != null && x3.hasKey(k);
  }
}
"""

TREE_MAP = """\
interface RBTree {
  invariant(this = rbleaf() | rbnode(_, _, _, _, _));
  constructor rbleaf() matches(notall(result)) returns();
  constructor rbnode(int color, RBTree l, int key, Object val, RBTree r)
    matches(notall(result))
    returns(color, l, key, val, r);
}
class RBLeaf implements RBTree {
  constructor rbleaf() returns() ( true )
  constructor rbnode(int color, RBTree l, int key, Object val, RBTree r)
    returns(color, l, key, val, r)
    ( false )
}
class RBNode implements RBTree {
  int color;
  RBTree left;
  int key;
  Object val;
  RBTree right;
  constructor rbleaf() returns() ( false )
  constructor rbnode(int c, RBTree l, int k, Object v, RBTree r)
    returns(c, l, k, v, r)
    ( color = c && left = l && key = k && val = v && right = r )
}
static RBTree balance(int c, RBTree l, int k, Object v, RBTree r) {
  if (c = 1)
    cond {
      (l = rbnode(1, rbnode(1, RBTree a, int xk, Object xv, RBTree b),
                  int yk, Object yv, RBTree c2))
      { return RBNode.rbnode(1, RBNode.rbnode(0, a, xk, xv, b), yk, yv,
               RBNode.rbnode(0, c2, k, v, r)); }
      (l = rbnode(1, RBTree a, int xk, Object xv,
                  rbnode(1, RBTree b, int yk, Object yv, RBTree c2)))
      { return RBNode.rbnode(1, RBNode.rbnode(0, a, xk, xv, b), yk, yv,
               RBNode.rbnode(0, c2, k, v, r)); }
      (r = rbnode(1, rbnode(1, RBTree b, int yk, Object yv, RBTree c2),
                  int zk, Object zv, RBTree d))
      { return RBNode.rbnode(1, RBNode.rbnode(0, l, k, v, b), yk, yv,
               RBNode.rbnode(0, c2, zk, zv, d)); }
      (r = rbnode(1, RBTree b, int yk, Object yv,
                  rbnode(1, RBTree c2, int zk, Object zv, RBTree d)))
      { return RBNode.rbnode(1, RBNode.rbnode(0, l, k, v, b), yk, yv,
               RBNode.rbnode(0, c2, zk, zv, d)); }
    }
  return RBNode.rbnode(c, l, k, v, r);
}
static RBTree rbInsert(RBTree t, int k, Object v) {
  switch (t) {
    case rbleaf():
      return RBNode.rbnode(0, RBLeaf.rbleaf(), k, v, RBLeaf.rbleaf());
    case rbnode(int c, RBTree l, int nk, Object nv, RBTree r):
      cond {
        (k < nk) { return balance(c, rbInsert(l, k, v), nk, nv, r); }
        (k = nk) { return RBNode.rbnode(c, l, k, v, r); }
        (k > nk) { return balance(c, l, nk, nv, rbInsert(r, k, v)); }
      }
  }
}
static boolean rbHas(RBTree t, int k) {
  switch (t) {
    case rbleaf(): return false;
    case rbnode(_, RBTree l, int nk, _, RBTree r):
      cond {
        (k < nk) { return rbHas(l, k); }
        (k = nk) { return true; }
        (k > nk) { return rbHas(r, k); }
      }
  }
}
"""

ROWS = {
    "ArrayList": ARRAY_LIST,
    "LinkedList": LINKED_LIST,
    "HashMap": HASH_MAP,
    "TreeMap": TREE_MAP,
}

PROGRAM = ARRAY_LIST + LINKED_LIST + HASH_MAP + TREE_MAP
