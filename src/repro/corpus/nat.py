"""Natural numbers: the paper's running example (Figures 1-4, 7).

Three interoperating implementations of the ``Nat`` interface:
``ZNat`` (an int under the hood), and the Peano pair ``PZero`` /
``PSucc``.  Equality constructors shift views between them
(Section 3.2), so ``PSucc.succ(ZNat(3))`` "is legal!".
"""

NAT_INTERFACE = """\
interface Nat {
  invariant(this = zero() | succ(_));
  constructor zero() matches(notall(result)) returns();
  constructor succ(Nat n) matches(notall(result)) returns(n);
  constructor equals(Nat n);
}
"""

ZNAT = """\
class ZNat implements Nat {
  int val;
  private invariant(val >= 0);
  private ZNat(int n) matches ensures(n >= 0) returns(n)
    ( val = n && n >= 0 )
  constructor zero() returns()
    ( val = 0 )
  constructor succ(Nat n) returns(n)
    ( val >= 1 && ZNat(val - 1) = n )
  constructor equals(Nat n)
    ( zero() && n.zero() | succ(Nat y) && n.succ(y) )
  boolean greater(Nat x) iterates(x)
    ( this = succ(Nat y) && (y = x || y.greater(x)) )
  int toInt()
    ( result = val )
}
"""

PZERO = """\
class PZero implements Nat {
  constructor zero() returns()
    ( true )
  constructor succ(Nat n) returns(n)
    ( false )
  constructor equals(Nat n)
    ( n.zero() )
  int toInt()
    ( result = 0 )
}
"""

PSUCC = """\
class PSucc implements Nat {
  Nat pred;
  constructor zero() returns()
    ( false )
  constructor succ(Nat n) returns(n)
    ( pred = n )
  constructor equals(Nat n)
    ( n.succ(pred) )
  int toInt()
    ( result = pred.toInt() + 1 )
}
"""

FUNCTIONS = """\
static Nat plus(Nat m, Nat n) {
  switch (m, n) {
    case (zero(), Nat x):
    case (x, zero()):
      return x;
    case (succ(Nat k), _):
      return plus(k, ZNat.succ(n));
  }
}

static Nat times(Nat m, Nat n) {
  switch (m) {
    case zero(): return PZero.zero();
    case succ(Nat k): return plus(n, times(k, n));
  }
}

static boolean isZero(Nat n) {
  switch (n) {
    case zero(): return true;
    case succ(_): return false;
  }
}
"""

ROWS = {
    "Nat": NAT_INTERFACE,
    "ZNat": ZNAT,
    "PZero": PZERO,
    "PSucc": PSUCC,
}

PROGRAM = NAT_INTERFACE + ZNAT + PZERO + PSUCC + FUNCTIONS
