"""The paper's evaluation corpus (Section 7.1, Table 1).

Each module carries the JMatch 2.0 sources for one group of
implementations, as a mapping from Table 1 row name to source text,
plus a combined program that compiles, verifies, and runs:

* :mod:`repro.corpus.nat`          -- Nat, ZNat, PZero, PSucc
* :mod:`repro.corpus.lists`        -- List, EmptyList, ConsList,
  SnocList, ArrList (Figure 12)
* :mod:`repro.corpus.cps`          -- lambda-calculus ASTs and the
  invertible CPS conversion (Figure 5)
* :mod:`repro.corpus.typeinf`      -- unification-based type inference
* :mod:`repro.corpus.trees`        -- Tree, TreeLeaf, TreeBranch, and
  the AVL rebalance (Figure 13)
* :mod:`repro.corpus.collections_` -- ArrayList, LinkedList, HashMap,
  TreeMap
* :mod:`repro.corpus.java_baselines` -- the Java reference
  implementations used for Table 1's token comparison

``GROUPS`` maps each Table 1 row to (language, source-text) pairs.
"""

from . import collections_, cps, java_baselines, lists, nat, trees, typeinf


def jmatch_rows() -> dict[str, str]:
    """Table 1 row name -> JMatch source text."""
    rows: dict[str, str] = {}
    for module in (nat, lists, cps, typeinf, trees, collections_):
        rows.update(module.ROWS)
    return rows


def java_rows() -> dict[str, str]:
    """Table 1 row name -> Java baseline source text."""
    return dict(java_baselines.ROWS)


def combined_programs() -> dict[str, str]:
    """Group name -> complete compilable JMatch program."""
    return {
        "nat": nat.PROGRAM,
        "lists": lists.PROGRAM,
        "cps": cps.PROGRAM,
        "typeinf": typeinf.PROGRAM,
        "trees": trees.PROGRAM,
        "collections": collections_.PROGRAM,
    }
