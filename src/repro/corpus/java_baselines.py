"""Java reference implementations for Table 1's token comparison.

The paper compares each JMatch implementation against the most concise
Java equivalent its authors could write.  Those Java sources are not
public, so these are re-written baselines providing the same
functionality through standard Java idiom: constructors + accessors,
``instanceof`` chains in place of pattern matching, hand-written
inverse operations in place of backward modes, and explicit iterator
objects in place of iterative modes.  Absolute token counts therefore
differ from the paper's; the *ratio* shape (Java consistently larger)
is the reproduction target.
"""

NAT = """\
interface Nat {
    boolean isZero();
    Nat pred();
    Nat succ();
    boolean natEquals(Nat other);
    int toInt();
}
"""

ZNAT = """\
class ZNat implements Nat {
    private final int val;
    private ZNat(int n) {
        if (n < 0) throw new IllegalArgumentException("negative");
        this.val = n;
    }
    public static ZNat zero() { return new ZNat(0); }
    public static ZNat fromInt(int n) { return new ZNat(n); }
    public boolean isZero() { return val == 0; }
    public Nat pred() {
        if (val == 0) throw new IllegalStateException("zero has no pred");
        return new ZNat(val - 1);
    }
    public Nat succ() { return new ZNat(val + 1); }
    public boolean natEquals(Nat other) {
        if (other instanceof ZNat) return ((ZNat) other).val == val;
        Nat cur = other;
        int count = 0;
        while (!cur.isZero()) { cur = cur.pred(); count = count + 1; }
        return count == val;
    }
    public int toInt() { return val; }
    public boolean greater(Nat x) { return val > x.toInt(); }
    public java.util.Iterator<Nat> allSmaller() {
        final int bound = val;
        return new java.util.Iterator<Nat>() {
            private int next = 0;
            public boolean hasNext() { return next < bound; }
            public Nat next() { return new ZNat(next++); }
        };
    }
}
"""

PZERO = """\
class PZero implements Nat {
    public boolean isZero() { return true; }
    public Nat pred() {
        throw new IllegalStateException("zero has no pred");
    }
    public Nat succ() { return new PSucc(this); }
    public boolean natEquals(Nat other) { return other.isZero(); }
    public int toInt() { return 0; }
    public boolean equals(Object o) { return o instanceof PZero; }
    public int hashCode() { return 0; }
}
"""

PSUCC = """\
class PSucc implements Nat {
    private final Nat pred;
    public PSucc(Nat pred) { this.pred = pred; }
    public boolean isZero() { return false; }
    public Nat pred() { return pred; }
    public Nat succ() { return new PSucc(this); }
    public boolean natEquals(Nat other) {
        return !other.isZero() && pred.natEquals(other.pred());
    }
    public int toInt() { return 1 + pred.toInt(); }
    public boolean equals(Object o) {
        return o instanceof Nat && natEquals((Nat) o);
    }
    public int hashCode() { return toInt(); }
}

class NatOps {
    static Nat plus(Nat m, Nat n) {
        if (m.isZero()) return n;
        if (n.isZero()) return m;
        return plus(m.pred(), n.succ());
    }
    static Nat times(Nat m, Nat n) {
        if (m.isZero()) return new PZero();
        return plus(n, times(m.pred(), n));
    }
}
"""

LIST = """\
interface List {
    boolean isNil();
    Object head();
    List tail();
    List consOnto(Object h);
    List snocOnto(Object t);
    Object last();
    List init();
    List reverse();
    boolean contains(Object elem);
    java.util.Iterator<Object> elements();
    int size();
    boolean listEquals(List other);
}
"""

EMPTY_LIST = """\
class EmptyList implements List {
    public boolean isNil() { return true; }
    public Object head() { throw new java.util.NoSuchElementException(); }
    public List tail() { throw new java.util.NoSuchElementException(); }
    public Object last() { throw new java.util.NoSuchElementException(); }
    public List init() { throw new java.util.NoSuchElementException(); }
    public List consOnto(Object h) { return new ConsList(h, this); }
    public List snocOnto(Object t) { return new ConsList(t, this); }
    public List reverse() { return this; }
    public boolean contains(Object elem) { return false; }
    public int size() { return 0; }
    public boolean listEquals(List other) { return other.isNil(); }
    public java.util.Iterator<Object> elements() {
        return new java.util.Iterator<Object>() {
            public boolean hasNext() { return false; }
            public Object next() {
                throw new java.util.NoSuchElementException();
            }
        };
    }
}
"""

CONS_LIST = """\
class ConsList implements List {
    private final Object hd;
    private final List tl;
    public ConsList(Object hd, List tl) { this.hd = hd; this.tl = tl; }
    public boolean isNil() { return false; }
    public Object head() { return hd; }
    public List tail() { return tl; }
    public List consOnto(Object h) { return new ConsList(h, this); }
    public List snocOnto(Object t) {
        return new ConsList(hd, tl.snocOnto(t));
    }
    public Object last() {
        if (tl.isNil()) return hd;
        return tl.last();
    }
    public List init() {
        if (tl.isNil()) return new EmptyList();
        return new ConsList(hd, tl.init());
    }
    public List reverse() {
        List out = new EmptyList();
        List cur = this;
        while (!cur.isNil()) {
            out = new ConsList(cur.head(), out);
            cur = cur.tail();
        }
        return out;
    }
    public boolean contains(Object elem) {
        if (hd == null ? elem == null : hd.equals(elem)) return true;
        return tl.contains(elem);
    }
    public int size() { return 1 + tl.size(); }
    public boolean listEquals(List other) {
        if (other.isNil()) return false;
        Object oh = other.head();
        if (hd == null ? oh != null : !hd.equals(oh)) return false;
        return tl.listEquals(other.tail());
    }
    public java.util.Iterator<Object> elements() {
        return new java.util.Iterator<Object>() {
            private List cur = ConsList.this;
            public boolean hasNext() { return !cur.isNil(); }
            public Object next() {
                Object out = cur.head();
                cur = cur.tail();
                return out;
            }
        };
    }
}
"""

SNOC_LIST = """\
class SnocList implements List {
    private final List front;
    private final Object back;
    public SnocList(List front, Object back) {
        this.front = front;
        this.back = back;
    }
    public boolean isNil() { return false; }
    public Object head() {
        if (front.isNil()) return back;
        return front.head();
    }
    public List tail() {
        if (front.isNil()) return front;
        return new SnocList(front.tail(), back);
    }
    public Object last() { return back; }
    public List init() { return front; }
    public List consOnto(Object h) {
        if (front.isNil()) return new SnocList(new SnocList(front, h), back);
        return new SnocList(front.consOnto(h), back);
    }
    public List snocOnto(Object t) { return new SnocList(this, t); }
    public List reverse() {
        List out = new EmptyList();
        java.util.Iterator<Object> it = elements();
        while (it.hasNext()) out = out.consOnto(it.next());
        return out;
    }
    public boolean contains(Object elem) {
        if (back == null ? elem == null : back.equals(elem)) return true;
        return front.contains(elem);
    }
    public int size() { return front.size() + 1; }
    public boolean listEquals(List other) {
        if (other.isNil()) return false;
        Object oh = other.head();
        Object h = head();
        if (h == null ? oh != null : !h.equals(oh)) return false;
        return tail().listEquals(other.tail());
    }
    public java.util.Iterator<Object> elements() {
        return new java.util.Iterator<Object>() {
            private List cur = SnocList.this;
            public boolean hasNext() { return !cur.isNil(); }
            public Object next() {
                Object out = cur.head();
                cur = cur.tail();
                return out;
            }
        };
    }
}
"""

ARR_LIST = """\
class ArrList implements List {
    private final Object[] store;
    private final int size;
    private ArrList(Object[] store, int size) {
        this.store = store;
        this.size = size;
    }
    public static ArrList empty() { return new ArrList(new Object[4], 0); }
    public boolean isNil() { return size == 0; }
    public Object head() {
        if (size == 0) throw new java.util.NoSuchElementException();
        return store[size - 1];
    }
    public List tail() {
        if (size == 0) throw new java.util.NoSuchElementException();
        return new ArrList(store, size - 1);
    }
    public Object last() { return store[0]; }
    public List init() {
        Object[] next = new Object[store.length];
        System.arraycopy(store, 1, next, 0, size - 1);
        return new ArrList(next, size - 1);
    }
    public List consOnto(Object h) {
        Object[] target = store;
        if (size == store.length || store[size] != null) {
            target = new Object[Math.max(4, store.length * 2)];
            System.arraycopy(store, 0, target, 0, size);
        }
        target[size] = h;
        return new ArrList(target, size + 1);
    }
    public List snocOnto(Object t) {
        Object[] next = new Object[Math.max(4, size + 1)];
        next[0] = t;
        System.arraycopy(store, 0, next, 1, size);
        return new ArrList(next, size + 1);
    }
    public List reverse() {
        Object[] next = new Object[size];
        for (int i = 0; i < size; i++) next[i] = store[size - 1 - i];
        return new ArrList(next, size);
    }
    public boolean contains(Object elem) {
        for (int i = 0; i < size; i++) {
            Object v = store[i];
            if (v == null ? elem == null : v.equals(elem)) return true;
        }
        return false;
    }
    public int size() { return size; }
    public boolean listEquals(List other) {
        List cur = this;
        while (!cur.isNil()) {
            if (other.isNil()) return false;
            Object a = cur.head();
            Object b = other.head();
            if (a == null ? b != null : !a.equals(b)) return false;
            cur = cur.tail();
            other = other.tail();
        }
        return other.isNil();
    }
    public java.util.Iterator<Object> elements() {
        return new java.util.Iterator<Object>() {
            private int i = size - 1;
            public boolean hasNext() { return i >= 0; }
            public Object next() { return store[i--]; }
        };
    }
}
"""

EXPR = """\
abstract class Expr {
    public abstract boolean exprEquals(Expr other);
    public abstract java.util.Set<String> freeNames();
}
"""

VARIABLE = """\
class Var extends Expr {
    private final String name;
    public Var(String name) { this.name = name; }
    public String name() { return name; }
    public boolean exprEquals(Expr other) {
        return other instanceof Var && ((Var) other).name.equals(name);
    }
    public java.util.Set<String> freeNames() {
        java.util.Set<String> out = new java.util.HashSet<String>();
        out.add(name);
        return out;
    }
    public boolean equals(Object o) {
        return o instanceof Expr && exprEquals((Expr) o);
    }
    public int hashCode() { return name.hashCode(); }
}
"""

LAMBDA = """\
class Lambda extends Expr {
    private final Var param;
    private final Expr body;
    public Lambda(Var param, Expr body) {
        this.param = param;
        this.body = body;
    }
    public Var param() { return param; }
    public Expr body() { return body; }
    public boolean exprEquals(Expr other) {
        if (!(other instanceof Lambda)) return false;
        Lambda l = (Lambda) other;
        return l.param.exprEquals(param) && l.body.exprEquals(body);
    }
    public java.util.Set<String> freeNames() {
        java.util.Set<String> out = body.freeNames();
        out.add(param.name());
        return out;
    }
    public boolean equals(Object o) {
        return o instanceof Expr && exprEquals((Expr) o);
    }
    public int hashCode() { return 31 * param.hashCode() + body.hashCode(); }
}
"""

TYPED_LAMBDA = """\
class TypedLambda extends Lambda {
    private final Type ptype;
    public TypedLambda(Var param, Type ptype, Expr body) {
        super(param, body);
        this.ptype = ptype;
    }
    public Type ptype() { return ptype; }
    public boolean exprEquals(Expr other) {
        if (!(other instanceof TypedLambda)) return false;
        TypedLambda t = (TypedLambda) other;
        return super.exprEquals(other) && t.ptype.typeEquals(ptype);
    }
}
"""

APPLY = """\
class Apply extends Expr {
    private final Expr fn;
    private final Expr arg;
    public Apply(Expr fn, Expr arg) { this.fn = fn; this.arg = arg; }
    public Expr fn() { return fn; }
    public Expr arg() { return arg; }
    public boolean exprEquals(Expr other) {
        if (!(other instanceof Apply)) return false;
        Apply a = (Apply) other;
        return a.fn.exprEquals(fn) && a.arg.exprEquals(arg);
    }
    public java.util.Set<String> freeNames() {
        java.util.Set<String> out = fn.freeNames();
        out.addAll(arg.freeNames());
        return out;
    }
    public boolean equals(Object o) {
        return o instanceof Expr && exprEquals((Expr) o);
    }
    public int hashCode() { return fn.hashCode() * 17 + arg.hashCode(); }
}
"""

CPS = """\
class CpsConverter {
    static Var freshVar(String prefix, Expr e) {
        java.util.Set<String> used = e.freeNames();
        if (!used.contains(prefix)) return new Var(prefix);
        int i = 0;
        while (used.contains(prefix + i)) i = i + 1;
        return new Var(prefix + i);
    }
    static Expr cps(Expr e) {
        Var k = freshVar("k", e);
        if (e instanceof Var) {
            return new Lambda(k, new Apply(k, e));
        }
        if (e instanceof Lambda) {
            Lambda l = (Lambda) e;
            return new Lambda(k, new Apply(k, new Lambda(l.param(),
                new Lambda(k, new Apply(cps(l.body()), k)))));
        }
        Apply a = (Apply) e;
        Var f = freshVar("f", a.arg());
        Var v = new Var("v");
        return new Lambda(k, new Apply(cps(a.fn()),
            new Lambda(f, new Apply(cps(a.arg()),
                new Lambda(v, new Apply(new Apply(f, v), k))))));
    }
    static Expr uncps(Expr target) {
        if (!(target instanceof Lambda)) throw new IllegalArgumentException();
        Lambda outer = (Lambda) target;
        Var k = outer.param();
        Expr body = outer.body();
        if (!(body instanceof Apply)) throw new IllegalArgumentException();
        Apply app = (Apply) body;
        if (app.fn().exprEquals(k)) {
            Expr inner = app.arg();
            if (inner instanceof Var) return inner;
            Lambda lam = (Lambda) inner;
            Lambda cont = (Lambda) lam.body();
            Apply capp = (Apply) cont.body();
            return new Lambda(lam.param(), uncps(capp.fn()));
        }
        Expr fnSource = uncps(app.fn());
        Lambda fCont = (Lambda) app.arg();
        Apply argApp = (Apply) fCont.body();
        Expr argSource = uncps(argApp.fn());
        return new Apply(fnSource, argSource);
    }
}
"""

TYPE = """\
abstract class Type {
    public abstract boolean typeEquals(Type other);
    public abstract boolean unifiesWith(Type other);
}
"""

BASE_TYPE = """\
class BaseType extends Type {
    private final String name;
    public BaseType(String name) { this.name = name; }
    public String name() { return name; }
    public boolean typeEquals(Type other) {
        return other instanceof BaseType
            && ((BaseType) other).name.equals(name);
    }
    public boolean unifiesWith(Type other) {
        if (other instanceof UnknownType) return true;
        return typeEquals(other);
    }
}
"""

ARROW_TYPE = """\
class ArrowType extends Type {
    private final Type from;
    private final Type to;
    public ArrowType(Type from, Type to) { this.from = from; this.to = to; }
    public Type from() { return from; }
    public Type to() { return to; }
    public boolean typeEquals(Type other) {
        if (!(other instanceof ArrowType)) return false;
        ArrowType a = (ArrowType) other;
        return a.from.typeEquals(from) && a.to.typeEquals(to);
    }
    public boolean unifiesWith(Type other) {
        if (other instanceof UnknownType) return true;
        if (!(other instanceof ArrowType)) return false;
        ArrowType a = (ArrowType) other;
        return from.unifiesWith(a.from) && to.unifiesWith(a.to);
    }
}
"""

UNKNOWN_TYPE = """\
class UnknownType extends Type {
    private final int id;
    public UnknownType(int id) { this.id = id; }
    public int id() { return id; }
    public boolean typeEquals(Type other) {
        return other instanceof UnknownType && ((UnknownType) other).id == id;
    }
    public boolean unifiesWith(Type other) { return true; }
}
"""

ENVIRONMENT = """\
class Environment {
    private final Var key;
    private final Type val;
    private final Environment next;
    public Environment(Var key, Type val, Environment next) {
        this.key = key;
        this.val = val;
        this.next = next;
    }
    public Type lookup(Var x) {
        if (key.exprEquals(x)) return val;
        if (next == null) return null;
        return next.lookup(x);
    }
    public static Environment bind(Environment env, Var x, Type t) {
        return new Environment(x, t, env);
    }
    public static Type infer(Environment env, Expr e, int depth) {
        if (e instanceof Var) {
            Type t = env == null ? null : env.lookup((Var) e);
            return t == null ? new UnknownType(depth) : t;
        }
        if (e instanceof TypedLambda) {
            TypedLambda l = (TypedLambda) e;
            return new ArrowType(l.ptype(),
                infer(bind(env, l.param(), l.ptype()), l.body(), depth + 1));
        }
        if (e instanceof Lambda) {
            Lambda l = (Lambda) e;
            Type a = new UnknownType(depth);
            return new ArrowType(a,
                infer(bind(env, l.param(), a), l.body(), depth + 1));
        }
        Apply app = (Apply) e;
        Type fnType = infer(env, app.fn(), depth);
        Type argType = infer(env, app.arg(), depth);
        if (fnType instanceof ArrowType
                && ((ArrowType) fnType).from().unifiesWith(argType)) {
            return ((ArrowType) fnType).to();
        }
        return new UnknownType(depth);
    }
}
"""

TREE = """\
abstract class Tree {
    public abstract int height();
    public abstract boolean isLeaf();
    public abstract Tree left();
    public abstract int value();
    public abstract Tree right();
}
"""

TREE_LEAF = """\
class TreeLeaf extends Tree {
    public int height() { return 0; }
    public boolean isLeaf() { return true; }
    public Tree left() { throw new IllegalStateException("leaf"); }
    public int value() { throw new IllegalStateException("leaf"); }
    public Tree right() { throw new IllegalStateException("leaf"); }
    public boolean equals(Object o) { return o instanceof TreeLeaf; }
    public int hashCode() { return 0; }
}
"""

TREE_BRANCH = """\
class TreeBranch extends Tree {
    private final Tree left;
    private final int value;
    private final Tree right;
    private final int h;
    public TreeBranch(Tree left, int value, Tree right) {
        this.left = left;
        this.value = value;
        this.right = right;
        this.h = 1 + Math.max(left.height(), right.height());
    }
    public int height() { return h; }
    public boolean isLeaf() { return false; }
    public Tree left() { return left; }
    public int value() { return value; }
    public Tree right() { return right; }
    public boolean equals(Object o) {
        if (!(o instanceof TreeBranch)) return false;
        TreeBranch b = (TreeBranch) o;
        return b.value == value && b.left.equals(left)
            && b.right.equals(right);
    }
    public int hashCode() {
        return value * 31 + left.hashCode() * 7 + right.hashCode();
    }
}
"""

AVL_TREE = """\
class AVLTree {
    private final Tree root;
    public AVLTree(Tree root) { this.root = root; }
    public AVLTree add(int x) { return new AVLTree(insert(root, x)); }
    public boolean has(int x) { return member(root, x); }
    static Tree rebalance(Tree l, int v, Tree r) {
        if (l.height() - r.height() > 1) {
            Tree ll = l.left();
            Tree lr = l.right();
            if (ll.height() >= lr.height()) {
                return new TreeBranch(
                    new TreeBranch(ll.left(), ll.isLeaf() ? 0 : ll.value(),
                                   ll.isLeaf() ? ll : ll.right()),
                    l.value(),
                    new TreeBranch(lr, v, r));
            } else {
                return new TreeBranch(
                    new TreeBranch(ll, l.value(), lr.left()),
                    lr.value(),
                    new TreeBranch(lr.right(), v, r));
            }
        }
        if (r.height() - l.height() > 1) {
            Tree rl = r.left();
            Tree rr = r.right();
            if (rl.height() > rr.height()) {
                return new TreeBranch(
                    new TreeBranch(l, v, rl.left()),
                    rl.value(),
                    new TreeBranch(rl.right(), r.value(), rr));
            } else {
                return new TreeBranch(
                    new TreeBranch(l, v, rl),
                    r.value(),
                    new TreeBranch(rr.left(), rr.isLeaf() ? 0 : rr.value(),
                                   rr.isLeaf() ? rr : rr.right()));
            }
        }
        return new TreeBranch(l, v, r);
    }
    static Tree insert(Tree t, int x) {
        if (t.isLeaf()) {
            return new TreeBranch(new TreeLeaf(), x, new TreeLeaf());
        }
        if (x < t.value()) {
            return rebalance(insert(t.left(), x), t.value(), t.right());
        }
        if (x == t.value()) return t;
        return rebalance(t.left(), t.value(), insert(t.right(), x));
    }
    static boolean member(Tree t, int x) {
        if (t.isLeaf()) return false;
        if (x < t.value()) return member(t.left(), x);
        if (x == t.value()) return true;
        return member(t.right(), x);
    }
}
"""

ARRAY_LIST = """\
class ArrayList {
    private final Object[] store;
    private final int size;
    private ArrayList(Object[] store, int size) {
        this.store = store;
        this.size = size;
    }
    public static ArrayList empty() { return new ArrayList(new Object[4], 0); }
    public ArrayList push(Object h) {
        Object[] target = store;
        if (size == store.length) {
            target = new Object[store.length * 2];
            System.arraycopy(store, 0, target, 0, size);
        }
        target[size] = h;
        return new ArrayList(target, size + 1);
    }
    public Object get(int i) {
        if (i < 0 || i >= size) throw new IndexOutOfBoundsException();
        return store[size - 1 - i];
    }
    public Object head() { return get(0); }
    public ArrayList tail() {
        if (size == 0) throw new java.util.NoSuchElementException();
        return new ArrayList(store, size - 1);
    }
    public int size() { return size; }
    public boolean contains(Object elem) {
        for (int i = 0; i < size; i++) {
            Object v = store[i];
            if (v == null ? elem == null : v.equals(elem)) return true;
        }
        return false;
    }
    public java.util.Iterator<Object> elements() {
        return new java.util.Iterator<Object>() {
            private int i = size - 1;
            public boolean hasNext() { return i >= 0; }
            public Object next() { return store[i--]; }
        };
    }
}
"""

LINKED_LIST = """\
interface Seq {
    boolean isNil();
    Object head();
    Seq tail();
    boolean contains(Object elem);
    int size();
    java.util.Iterator<Object> elements();
}
class SeqNil implements Seq {
    public boolean isNil() { return true; }
    public Object head() { throw new java.util.NoSuchElementException(); }
    public Seq tail() { throw new java.util.NoSuchElementException(); }
    public boolean contains(Object elem) { return false; }
    public int size() { return 0; }
    public java.util.Iterator<Object> elements() {
        return java.util.Collections.emptyIterator();
    }
}
class LinkedList implements Seq {
    private final Object hd;
    private final Seq tl;
    public LinkedList(Object hd, Seq tl) { this.hd = hd; this.tl = tl; }
    public boolean isNil() { return false; }
    public Object head() { return hd; }
    public Seq tail() { return tl; }
    public boolean contains(Object elem) {
        if (hd == null ? elem == null : hd.equals(elem)) return true;
        return tl.contains(elem);
    }
    public int size() { return 1 + tl.size(); }
    public java.util.Iterator<Object> elements() {
        return new java.util.Iterator<Object>() {
            private Seq cur = LinkedList.this;
            public boolean hasNext() { return !cur.isNil(); }
            public Object next() {
                Object out = cur.head();
                cur = cur.tail();
                return out;
            }
        };
    }
    static Seq append(Seq a, Seq b) {
        if (a.isNil()) return b;
        return new LinkedList(a.head(), append(a.tail(), b));
    }
    static int length(Seq s) {
        if (s.isNil()) return 0;
        return 1 + length(s.tail());
    }
}
"""

HASH_MAP = """\
class Bucket {
    final int key;
    final Object val;
    final Bucket next;
    Bucket(int key, Object val, Bucket next) {
        this.key = key;
        this.val = val;
        this.next = next;
    }
    boolean hasKey(int k) {
        if (k == key) return true;
        return next != null && next.hasKey(k);
    }
    Object find(int k) {
        if (k == key) return val;
        return next == null ? null : next.find(k);
    }
}
class HashMap {
    private final Bucket[] buckets;
    private HashMap(Bucket[] buckets) { this.buckets = buckets; }
    public static HashMap empty() { return new HashMap(new Bucket[4]); }
    private static int slot(int k) {
        int h = k % 4;
        return h < 0 ? h + 4 : h;
    }
    public HashMap put(int k, Object v) {
        Bucket[] next = buckets.clone();
        next[slot(k)] = new Bucket(k, v, buckets[slot(k)]);
        return new HashMap(next);
    }
    public boolean has(int k) {
        Bucket b = buckets[slot(k)];
        return b != null && b.hasKey(k);
    }
    public Object get(int k) {
        Bucket b = buckets[slot(k)];
        return b == null ? null : b.find(k);
    }
}
"""

TREE_MAP = """\
abstract class RBTree {
    abstract boolean isLeaf();
    abstract int color();
    abstract RBTree left();
    abstract int key();
    abstract Object val();
    abstract RBTree right();
}
class RBLeaf extends RBTree {
    boolean isLeaf() { return true; }
    int color() { return 0; }
    RBTree left() { throw new IllegalStateException(); }
    int key() { throw new IllegalStateException(); }
    Object val() { throw new IllegalStateException(); }
    RBTree right() { throw new IllegalStateException(); }
}
class RBNode extends RBTree {
    private final int color;
    private final RBTree left;
    private final int key;
    private final Object val;
    private final RBTree right;
    RBNode(int color, RBTree left, int key, Object val, RBTree right) {
        this.color = color;
        this.left = left;
        this.key = key;
        this.val = val;
        this.right = right;
    }
    boolean isLeaf() { return false; }
    int color() { return color; }
    RBTree left() { return left; }
    int key() { return key; }
    Object val() { return val; }
    RBTree right() { return right; }
    static boolean isRed(RBTree t) { return !t.isLeaf() && t.color() == 1; }
    static RBTree balance(int c, RBTree l, int k, Object v, RBTree r) {
        if (c == 1) {
            if (isRed(l) && isRed(l.left())) {
                RBTree ll = l.left();
                return new RBNode(1,
                    new RBNode(0, ll.left(), ll.key(), ll.val(), ll.right()),
                    l.key(), l.val(),
                    new RBNode(0, l.right(), k, v, r));
            }
            if (isRed(l) && isRed(l.right())) {
                RBTree lr = l.right();
                return new RBNode(1,
                    new RBNode(0, l.left(), l.key(), l.val(), lr.left()),
                    lr.key(), lr.val(),
                    new RBNode(0, lr.right(), k, v, r));
            }
            if (isRed(r) && isRed(r.left())) {
                RBTree rl = r.left();
                return new RBNode(1,
                    new RBNode(0, l, k, v, rl.left()),
                    rl.key(), rl.val(),
                    new RBNode(0, rl.right(), r.key(), r.val(), r.right()));
            }
            if (isRed(r) && isRed(r.right())) {
                RBTree rr = r.right();
                return new RBNode(1,
                    new RBNode(0, l, k, v, r.left()),
                    r.key(), r.val(),
                    new RBNode(0, rr.left(), rr.key(), rr.val(), rr.right()));
            }
        }
        return new RBNode(c, l, k, v, r);
    }
    static RBTree insert(RBTree t, int k, Object v) {
        if (t.isLeaf()) {
            return new RBNode(0, new RBLeaf(), k, v, new RBLeaf());
        }
        if (k < t.key()) {
            return balance(t.color(), insert(t.left(), k, v), t.key(),
                           t.val(), t.right());
        }
        if (k == t.key()) {
            return new RBNode(t.color(), t.left(), k, v, t.right());
        }
        return balance(t.color(), t.left(), t.key(), t.val(),
                       insert(t.right(), k, v));
    }
    static boolean has(RBTree t, int k) {
        if (t.isLeaf()) return false;
        if (k < t.key()) return has(t.left(), k);
        if (k == t.key()) return true;
        return has(t.right(), k);
    }
}
"""

ROWS = {
    "Nat": NAT,
    "ZNat": ZNAT,
    "PZero": PZERO,
    "PSucc": PSUCC,
    "List": LIST,
    "EmptyList": EMPTY_LIST,
    "ConsList": CONS_LIST,
    "SnocList": SNOC_LIST,
    "ArrList": ARR_LIST,
    "Expr": EXPR,
    "Variable": VARIABLE,
    "Lambda": LAMBDA,
    "TypedLambda": TYPED_LAMBDA,
    "Apply": APPLY,
    "CPS": CPS,
    "Type": TYPE,
    "BaseType": BASE_TYPE,
    "ArrowType": ARROW_TYPE,
    "UnknownType": UNKNOWN_TYPE,
    "Environment": ENVIRONMENT,
    "Tree": TREE,
    "TreeLeaf": TREE_LEAF,
    "TreeBranch": TREE_BRANCH,
    "AVLTree": AVL_TREE,
    "ArrayList": ARRAY_LIST,
    "LinkedList": LINKED_LIST,
    "HashMap": HASH_MAP,
    "TreeMap": TREE_MAP,
}
