"""Unification-based type inference over the lambda-calculus ASTs.

Types are an abstract ``Type`` interface with three implementations
(base types, arrows, and inference unknowns); environments are linked
bindings with an iterative ``lookup`` mode.  ``infer`` walks the AST
(placed outside the node classes in this subset, but switching on the
same named patterns) and ``unify`` resolves unknowns via a
substitution list.
"""

TYPE_INTERFACE = """\
interface Type {
  invariant(this = BaseType _ | ArrowType _ | UnknownType _);
  constructor equals(Type t);
}
"""

BASE_TYPE = """\
class BaseType implements Type {
  String name;
  BaseType(String n) matches(true) returns(n)
    ( name = n )
  constructor equals(Type t)
    ( BaseType(String n2) = t && name = n2 )
}
"""

ARROW_TYPE = """\
class ArrowType implements Type {
  Type from;
  Type to;
  ArrowType(Type f, Type t) matches(true) returns(f, t)
    ( from = f && to = t )
  constructor equals(Type t)
    ( ArrowType(Type f2, Type t2) = t && from = f2 && to = t2 )
}
"""

UNKNOWN_TYPE = """\
class UnknownType implements Type {
  int id;
  UnknownType(int i) matches(true) returns(i)
    ( id = i )
  constructor equals(Type t)
    ( UnknownType(int i2) = t && id = i2 )
}
"""

ENVIRONMENT = """\
class Environment {
  Var key;
  Type val;
  Environment next;
  Environment(Var k, Type v, Environment n) matches(true) returns(k, v, n)
    ( key = k && val = v && next = n )
  boolean lookup(Var x, Type t) iterates(x, t)
    ( x = key && t = val || next != null && next.lookup(x, t) )
}

static Environment bind(Environment env, Var x, Type t) {
  return Environment(x, t, env);
}
"""

INFER = """\
static boolean unifies(Type a, Type b) {
  cond {
    (UnknownType _ = a) { return true; }
    (UnknownType _ = b) { return true; }
    (BaseType(String n1) = a && BaseType(String n2) = b)
      { return n1 = n2; }
    (ArrowType(Type f1, Type t1) = a && ArrowType(Type f2, Type t2) = b)
      { return unifies(f1, f2) && unifies(t1, t2); }
    else return false;
  }
}

static Type infer(Environment env, Expr e, int depth) {
  switch (e) {
    case Var _:
      cond {
        (env != null && env.lookup(Var xv, Type t) && xv = e) { return t; }
        else return UnknownType(depth);
      }
    case TypedLambda(Var v, Type t, Expr body):
      return ArrowType(t, infer(bind(env, v, t), body, depth + 1));
    case Lambda(Var v, Expr body):
      let Type a = UnknownType(depth);
      return ArrowType(a, infer(bind(env, v, a), body, depth + 1));
    case Apply(Expr fn, Expr arg):
      cond {
        (ArrowType(Type from, Type to) = infer(env, fn, depth)
         && unifies(from, infer(env, arg, depth)))
          { return to; }
        else return UnknownType(depth);
      }
  }
}
"""

ROWS = {
    "Type": TYPE_INTERFACE,
    "BaseType": BASE_TYPE,
    "ArrowType": ARROW_TYPE,
    "UnknownType": UNKNOWN_TYPE,
    "Environment": ENVIRONMENT,
}

from .cps import APPLY, EXPR_INTERFACE, LAMBDA, TYPED_LAMBDA, VARIABLE

PROGRAM = (
    EXPR_INTERFACE
    + VARIABLE
    + LAMBDA
    + TYPED_LAMBDA
    + APPLY
    + TYPE_INTERFACE
    + BASE_TYPE
    + ARROW_TYPE
    + UNKNOWN_TYPE
    + ENVIRONMENT
    + INFER
)
